"""Cycle-level executable models of the paper's two vector machines.

These simulators are the executable counterpart of the analytical model:
same bank/bus substrate, same overhead constants, same stall rules — but
driven by concrete address streams instead of expectations, so the
analytical equations can be cross-validated (and the workload traces of
:mod:`repro.workloads` replayed).

Timing rules (Section 3.1):

* one element issues per cycle per read bus; two read buses allow a
  double-stream access to issue a pair per cycle;
* a bank busy from a previous access stalls the whole issue pipeline until
  it recovers (MM-model accesses are otherwise fully pipelined);
* stores are buffered: they occupy banks and the write bus but never stall
  (pass ``write_buffer_depth`` to replace this assumption with a finite
  buffer that can push back);
* every ``MVL`` strip pays ``strip_overhead + T_start`` start-up cycles,
  and every block pays ``loop_overhead``;
* on the CC-model, an *initial* loading sweep streams through memory like
  the MM-model while filling the cache (compulsory misses pipeline), but a
  sweep that expects cached data pays a non-pipelined ``t_m``-cycle stall
  for every miss — the "single miss costs the entire memory access time"
  premise of the paper.  A cached strip whose data is resident saves the
  ``t_m`` component of its start-up (Eq. (4)).
"""

from __future__ import annotations

import numpy as np

from repro.analytical.base import MachineConfig
from repro.cache.base import Cache
from repro.machine.ops import (
    LoadPair,
    Operation,
    VectorCompute,
    VectorLoad,
    VectorStore,
)
from repro.machine.report import ExecutionReport
from repro.memory.banks import InterleavedMemory, InterleaveScheme
from repro.memory.bus import BusSet
from repro.memory.write_buffer import WriteBuffer

__all__ = ["VectorMachine", "MMMachine", "CCMachine"]


class VectorMachine:
    """Common machinery of both machine models.

    Args:
        config: machine parameters (shared with the analytical model).
        scheme: optional interleave scheme override for the memory banks.
        memory: optional pre-built memory, for substrates the analytical
            config cannot describe (e.g. a prime bank count for the
            Budnik–Kuck ablation).  Overrides ``scheme``.
        write_buffer_depth: ``None`` (default) models the paper's
            assumption — stores are buffered and never stall.  An integer
            attaches a finite :class:`~repro.memory.write_buffer.WriteBuffer`
            of that depth, so store streams that out-run the banks push
            back on the pipeline (``report.store_stall_cycles``).
    """

    def __init__(
        self,
        config: MachineConfig,
        scheme: InterleaveScheme | None = None,
        *,
        memory: InterleavedMemory | None = None,
        write_buffer_depth: int | None = None,
    ) -> None:
        self.config = config
        if memory is not None:
            self.memory = memory
        else:
            self.memory = InterleavedMemory(config.num_banks, config.t_m, scheme)
        self.buses = BusSet()
        self.write_buffer = (
            WriteBuffer(self.memory, write_buffer_depth,
                        bus=self.buses.write_bus)
            if write_buffer_depth is not None else None
        )
        self._cycle = 0

    # -- model-specific hooks ---------------------------------------------------

    @property
    def stride_modulus(self) -> int:
        """Range bound for random strides: ``M`` here, ``C`` on a CC-model."""
        return self.config.num_banks

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        """Cycles consumed by one element beyond its 1-cycle issue slot.

        ``hit`` carries a pre-computed cache outcome from
        :meth:`_probe_loads` (``None`` when the caller did not batch the
        probes, or on a cacheless machine, where it is ignored).
        """
        raise NotImplementedError

    def _probe_loads(self, addresses_first, addresses_second):
        """Pre-compute cache outcomes for a (pair of) load stream(s).

        Returns ``(hits_first, hits_second)`` — per-element hit lists in
        issue order — or ``(None, None)`` when there is no cache to probe
        (the MM-machine) or the cache has no batched path.  Cache state is
        clock-independent, so probing the whole operation up front through
        :meth:`~repro.cache.base.Cache.access_many` is exact.
        """
        return None, None

    # -- execution ---------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulated cycle."""
        return self._cycle

    def reset(self) -> None:
        """Zero the clock and all substrate state."""
        self._cycle = 0
        self.memory.reset()
        self.buses.reset()
        if self.write_buffer is not None:
            self.write_buffer.reset()

    def execute(self, operations, *, add_loop_overhead: bool = True) -> ExecutionReport:
        """Run a sequence of operations; returns the cycle accounting.

        ``operations`` is any iterable of :data:`~repro.machine.ops.Operation`.
        ``add_loop_overhead`` charges the per-block 10-cycle overhead once.
        """
        report = ExecutionReport()
        start = self._cycle
        if add_loop_overhead:
            self._cycle += self.config.loop_overhead
            report.overhead_cycles += self.config.loop_overhead
        for op in operations:
            self._run_op(op, report)
        report.cycles += self._cycle - start
        return report

    def _run_op(self, op: Operation, report: ExecutionReport) -> None:
        if isinstance(op, VectorLoad):
            self._run_load_strips(op, None, report)
        elif isinstance(op, LoadPair):
            self._run_load_strips(op.first, op.second, report)
        elif isinstance(op, VectorStore):
            self._run_store(op, report)
        elif isinstance(op, VectorCompute):
            self._cycle += op.length
            report.elements += op.length
        else:
            raise TypeError(f"unknown operation {op!r}")

    def _strip_overhead(self, load: VectorLoad) -> int:
        """Start-up cycles of one strip (model-specific via override)."""
        return self.config.strip_overhead + self.config.t_start

    def _run_load_strips(
        self, first: VectorLoad, second: VectorLoad | None, report: ExecutionReport
    ) -> None:
        mvl = self.config.mvl
        addresses_first = first.addresses()
        addresses_second = second.addresses() if second is not None else []
        hits_first, hits_second = self._probe_loads(
            addresses_first, addresses_second
        )
        for strip_start in range(0, first.length, mvl):
            overhead = self._strip_overhead(first)
            self._cycle += overhead
            report.overhead_cycles += overhead
            strip_first = addresses_first[strip_start:strip_start + mvl]
            strip_second = addresses_second[strip_start:strip_start + mvl]
            for k, address in enumerate(strip_first):
                issue = self.buses.request_read(self._cycle)
                self._cycle = max(self._cycle, issue)
                stall = self._element_cycles(
                    address, first, report,
                    None if hits_first is None else hits_first[strip_start + k],
                )
                if second is not None and k < len(strip_second):
                    self.buses.request_read(self._cycle)
                    stall += self._element_cycles(
                        strip_second[k], second, report,
                        None if hits_second is None
                        else hits_second[strip_start + k],
                    )
                self._cycle += 1 + stall
                report.elements += 1
                if first.counts_results:
                    report.results += 1
                if second is not None and k < len(strip_second):
                    report.elements += 1
                    if second.counts_results:
                        report.results += 1
        # any second-stream tail longer than the first stream
        if second is not None and len(addresses_second) > len(addresses_first):
            tail = VectorLoad(
                base=addresses_second[len(addresses_first)],
                stride=second.stride,
                length=len(addresses_second) - len(addresses_first),
                expect_cached=second.expect_cached,
                counts_results=second.counts_results,
            )
            self._run_load_strips(tail, None, report)

    def _run_store(self, op: VectorStore, report: ExecutionReport) -> None:
        for address in op.addresses():
            if self.write_buffer is not None:
                stall = self.write_buffer.store(address, self._cycle)
                report.store_stall_cycles += stall
                self._cycle += 1 + stall
            else:
                # the paper's assumption: buffered, never stalls
                grant = self.buses.request_write(self._cycle)
                self.memory.access(address, grant)  # occupies the bank
                self._cycle += 1
            report.elements += 1


class MMMachine(VectorMachine):
    """The cacheless memory-register machine of Figure 2.

    Example:
        >>> machine = MMMachine(MachineConfig(num_banks=8,
        ...                                   memory_access_time=4))
        >>> report = machine.execute([VectorLoad(base=0, stride=1, length=64)])
        >>> report.bank_stall_cycles
        0
    """

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        reply = self.memory.access(address, self._cycle)
        report.bank_stall_cycles += reply.stall_cycles
        return reply.stall_cycles


class CCMachine(VectorMachine):
    """The cache-based machine of Figure 3.

    Args:
        config: machine parameters.
        cache: any :class:`~repro.cache.base.Cache`; the machine model does
            not care whether it is direct-, set-associative- or
            prime-mapped.
        scheme: optional interleave scheme override.
        start_registers: Section 2.3's cost/performance trade.  ``True``
            (default) pays for registers that cache each vector's
            converted starting index, so re-entering a vector is free;
            ``False`` saves the registers and instead re-folds the start
            address on every re-entry — ``start_recalc_cycles`` extra
            cycles per cached vector start ("1 or 2 more cycles at each
            vector start-up time").
        start_recalc_cycles: the re-folding cost when
            ``start_registers=False`` (the paper: one c-bit add per
            address chunk, so 1–2 cycles for realistic layouts).

    Example:
        >>> from repro.cache import PrimeMappedCache
        >>> machine = CCMachine(MachineConfig(num_banks=8,
        ...                                   memory_access_time=4,
        ...                                   cache_lines=31),
        ...                     PrimeMappedCache(c=5))
        >>> _ = machine.execute([VectorLoad(base=0, stride=3, length=31)])
        >>> rerun = machine.execute([VectorLoad(base=0, stride=3, length=31,
        ...                                     expect_cached=True)])
        >>> rerun.cache_misses
        0
    """

    def __init__(
        self,
        config: MachineConfig,
        cache: Cache,
        scheme: InterleaveScheme | None = None,
        *,
        start_registers: bool = True,
        start_recalc_cycles: int = 2,
    ) -> None:
        super().__init__(config, scheme)
        self.cache = cache
        if start_recalc_cycles < 0:
            raise ValueError("start_recalc_cycles must be non-negative")
        self.start_registers = start_registers
        self.start_recalc_cycles = start_recalc_cycles

    @property
    def stride_modulus(self) -> int:
        return self.cache.total_lines

    def reset(self) -> None:
        super().reset()
        self.cache.reset()

    def _strip_overhead(self, load: VectorLoad) -> int:
        base = self.config.strip_overhead + self.config.t_start
        if load.expect_cached:
            base -= self.config.t_m  # operands come from the cache
            if not self.start_registers:
                # re-fold the starting index instead of reading a register
                base += self.start_recalc_cycles
        return base

    def _probe_loads(self, addresses_first, addresses_second):
        access_many = getattr(self.cache, "access_many", None)
        if access_many is None:
            return None, None
        n1, n2 = len(addresses_first), len(addresses_second)
        if n1 == 0:
            return [], []
        # Issue order interleaves the two streams pairwise (the strip loop
        # slices both by the same offsets); any second-stream tail beyond
        # the first stream is replayed by a recursive _run_load_strips
        # call, which probes itself.
        paired = min(n1, n2)
        interleaved = np.empty(2 * paired + (n1 - paired), dtype=np.int64)
        first_arr = np.asarray(addresses_first, dtype=np.int64)
        interleaved[0:2 * paired:2] = first_arr[:paired]
        interleaved[1:2 * paired:2] = np.asarray(
            addresses_second[:paired], dtype=np.int64
        )
        interleaved[2 * paired:] = first_arr[paired:]
        hits = access_many(interleaved, return_hits=True).hits
        hits_first = np.empty(n1, dtype=bool)
        hits_first[:paired] = hits[0:2 * paired:2]
        hits_first[paired:] = hits[2 * paired:]
        return hits_first.tolist(), hits[1:2 * paired:2].tolist()

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        if hit is None:
            hit = self.cache.access(address).hit
        if hit:
            report.cache_hits += 1
            return 0
        report.cache_misses += 1
        if load.expect_cached:
            # A conflict the processor must stall out: the full memory
            # access time, not pipelinable (plus any bank conflict).
            reply = self.memory.access(address, self._cycle)
            report.bank_stall_cycles += reply.stall_cycles
            report.miss_stall_cycles += self.config.t_m
            return reply.stall_cycles + self.config.t_m
        # Initial loading: compulsory misses stream through the pipelined
        # memory exactly like the MM-model.
        reply = self.memory.access(address, self._cycle)
        report.bank_stall_cycles += reply.stall_cycles
        return reply.stall_cycles
