"""Cycle-level executable models of the paper's two vector machines.

These simulators are the executable counterpart of the analytical model:
same bank/bus substrate, same overhead constants, same stall rules — but
driven by concrete address streams instead of expectations, so the
analytical equations can be cross-validated (and the workload traces of
:mod:`repro.workloads` replayed).

Timing rules (Section 3.1):

* one element issues per cycle per read bus; two read buses allow a
  double-stream access to issue a pair per cycle;
* a bank busy from a previous access stalls the whole issue pipeline until
  it recovers (MM-model accesses are otherwise fully pipelined);
* stores are buffered: they occupy banks and the write bus but never stall
  (pass ``write_buffer_depth`` to replace this assumption with a finite
  buffer that can push back);
* every ``MVL`` strip pays ``strip_overhead + T_start`` start-up cycles,
  and every block pays ``loop_overhead``;
* on the CC-model, an *initial* loading sweep streams through memory like
  the MM-model while filling the cache (compulsory misses pipeline), but a
  sweep that expects cached data pays a non-pipelined ``t_m``-cycle stall
  for every miss — the "single miss costs the entire memory access time"
  premise of the paper.  A cached strip whose data is resident saves the
  ``t_m`` component of its start-up (Eq. (4)).

Both machines execute loads and stores through a vectorised strip-level
timing engine by default (see :meth:`VectorMachine._run_load_batched` for
the dispatch rules and ``docs/architecture.md`` for the derivations);
``fast_path=False`` selects the per-element scalar reference loop, which
the engine reproduces bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.analytical.base import MachineConfig
from repro.cache.base import Cache
from repro.machine.ops import (
    LoadPair,
    Operation,
    VectorCompute,
    VectorLoad,
    VectorStore,
)
from repro.machine.report import ExecutionReport
from repro.memory.banks import (
    InterleavedMemory,
    InterleaveScheme,
    LowOrderInterleave,
)
from repro.memory.bus import BusSet
from repro.memory.write_buffer import WriteBuffer

__all__ = ["VectorMachine", "MMMachine", "CCMachine"]


class VectorMachine:
    """Common machinery of both machine models.

    Args:
        config: machine parameters (shared with the analytical model).
        scheme: optional interleave scheme override for the memory banks.
        memory: optional pre-built memory, for substrates the analytical
            config cannot describe (e.g. a prime bank count for the
            Budnik–Kuck ablation).  Overrides ``scheme``.
        write_buffer_depth: ``None`` (default) models the paper's
            assumption — stores are buffered and never stall.  An integer
            attaches a finite :class:`~repro.memory.write_buffer.WriteBuffer`
            of that depth, so store streams that out-run the banks push
            back on the pipeline (``report.store_stall_cycles``).
        fast_path: run loads/stores through the vectorised strip-level
            timing engine whenever a batched mode applies (the default).
            ``False`` forces the per-element scalar reference loop; the
            two paths produce bit-for-bit identical
            :class:`~repro.machine.report.ExecutionReport` accounting
            (enforced by a Hypothesis property test and swept by the
            ``machine-timing`` oracle of :mod:`repro.verify`).
        backend: timing-engine selection, resolved once at construction
            (``None``/``"auto"`` take :func:`repro.kernels.default_backend`).
            ``"scalar"`` forces the per-element reference loop (implies
            ``fast_path=False``); ``"numpy"`` is the vectorised strip
            engine; ``"compiled"`` additionally runs the both-streams-
            touch-memory pair loop through :mod:`repro.kernels` (falling
            back to numpy off low-order interleave).  All bit-for-bit
            equivalent.
    """

    def __init__(
        self,
        config: MachineConfig,
        scheme: InterleaveScheme | None = None,
        *,
        memory: InterleavedMemory | None = None,
        write_buffer_depth: int | None = None,
        fast_path: bool = True,
        backend: str | None = None,
    ) -> None:
        self.config = config
        self._backend = kernels.resolve_backend(backend)
        if self._backend == "scalar":
            fast_path = False
        if memory is not None:
            self.memory = memory
        else:
            self.memory = InterleavedMemory(config.num_banks, config.t_m, scheme)
        self.buses = BusSet()
        self.write_buffer = (
            WriteBuffer(self.memory, write_buffer_depth,
                        bus=self.buses.write_bus)
            if write_buffer_depth is not None else None
        )
        self.fast_path = fast_path
        self._cycle = 0
        # memo for the zero-stall whole-op geometry of _run_load_batched:
        # (period, miss_count, overhead) -> (p_seen, per-bank access
        # counts, per-bank finish offsets from the op's start cycle) —
        # everything in it is cycle0- and base-independent
        self._zero_stall_geometry: dict[tuple, tuple] = {}
        # memo for stalling all-miss-prefix loads: because the bank
        # sequence is periodic, an op only ever touches its first-period
        # banks, so (lengths, period, overhead, residual per-bank busy
        # offsets from cycle0) fully determines the op's stalls, end
        # cycle, and the banks' new busy offsets.  Sweeps repeat the same
        # op shape back-to-back, so the bank state reaches a fixed point
        # relative to the op start and this memo hits almost always.
        self._strip_service_memo: dict[tuple, tuple] = {}

    # -- model-specific hooks ---------------------------------------------------

    @property
    def stride_modulus(self) -> int:
        """Range bound for random strides: ``M`` here, ``C`` on a CC-model."""
        return self.config.num_banks

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        """Cycles consumed by one element beyond its 1-cycle issue slot.

        ``hit`` carries a pre-computed cache outcome from
        :meth:`_probe_loads` (``None`` when the caller did not batch the
        probes, or on a cacheless machine, where it is ignored).
        """
        raise NotImplementedError

    def _probe_loads(self, addresses_first, addresses_second):
        """Pre-compute cache outcomes for a (pair of) load stream(s).

        ``addresses_first``/``addresses_second`` are int64 address arrays
        (``None`` for a single-stream load).  Returns ``(hits_first,
        hits_second)`` — per-element boolean hit arrays in issue order,
        the second truncated to the paired slot count — or ``(None,
        None)`` when there is no cache to probe (the MM-machine) or the
        cache has no batched path.  Cache state is clock-independent, so
        probing the whole operation up front through
        :meth:`~repro.cache.base.Cache.access_many` is exact.
        """
        return None, None

    # -- execution ---------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current simulated cycle."""
        return self._cycle

    def reset(self) -> None:
        """Zero the clock and all substrate state."""
        self._cycle = 0
        self.memory.reset()
        self.buses.reset()
        if self.write_buffer is not None:
            self.write_buffer.reset()

    def execute(self, operations, *, add_loop_overhead: bool = True) -> ExecutionReport:
        """Run a sequence of operations; returns the cycle accounting.

        ``operations`` is any iterable of :data:`~repro.machine.ops.Operation`.
        ``add_loop_overhead`` charges the per-block 10-cycle overhead once.
        """
        report = ExecutionReport()
        start = self._cycle
        if add_loop_overhead:
            self._cycle += self.config.loop_overhead
            report.overhead_cycles += self.config.loop_overhead
        for op in operations:
            self._run_op(op, report)
        report.cycles += self._cycle - start
        return report

    def _run_op(self, op: Operation, report: ExecutionReport) -> None:
        if isinstance(op, VectorLoad):
            self._run_load_strips(op, None, report)
        elif isinstance(op, LoadPair):
            self._run_load_strips(op.first, op.second, report)
        elif isinstance(op, VectorStore):
            self._run_store(op, report)
        elif isinstance(op, VectorCompute):
            self._cycle += op.length
            report.elements += op.length
        else:
            raise TypeError(f"unknown operation {op!r}")

    def _strip_overhead(self, load: VectorLoad) -> int:
        """Start-up cycles of one strip (model-specific via override)."""
        return self.config.strip_overhead + self.config.t_start

    def _run_load_strips(
        self, first: VectorLoad, second: VectorLoad | None, report: ExecutionReport
    ) -> None:
        addr_first = first.address_array()
        addr_second = second.address_array() if second is not None else None
        # With the fast path off, skip the batched cache probe too: the
        # reference loop then classifies each element through the scalar
        # ``cache.access`` inside ``_element_cycles``, exercising (and
        # costing) the plain per-element machinery end to end.
        hits_first, hits_second = (
            self._probe_loads(addr_first, addr_second)
            if self.fast_path else (None, None)
        )
        if not (self.fast_path and self._run_load_batched(
                first, second, addr_first, addr_second,
                hits_first, hits_second, report)):
            self._run_load_scalar(first, second, addr_first, addr_second,
                                  hits_first, hits_second, report)
        # any second-stream tail longer than the first stream replays as a
        # standalone load (its elements were not probed above)
        if second is not None and second.length > first.length:
            tail = VectorLoad(
                base=int(addr_second[first.length]),
                stride=second.stride,
                length=second.length - first.length,
                expect_cached=second.expect_cached,
                counts_results=second.counts_results,
            )
            self._run_load_strips(tail, None, report)

    def _run_load_scalar(
        self,
        first: VectorLoad,
        second: VectorLoad | None,
        addr_first,
        addr_second,
        hits_first,
        hits_second,
        report: ExecutionReport,
    ) -> None:
        """Per-element reference loop: the semantics every batched mode of
        :meth:`_run_load_batched` must reproduce bit-for-bit, and the
        fallback for shapes no batched mode covers."""
        mvl = self.config.mvl
        addresses_first = addr_first.tolist()
        addresses_second = (addr_second.tolist()
                            if addr_second is not None else [])
        if hits_first is not None:
            hits_first = hits_first.tolist()
            hits_second = hits_second.tolist()
        for strip_start in range(0, first.length, mvl):
            overhead = self._strip_overhead(first)
            self._cycle += overhead
            report.overhead_cycles += overhead
            strip_first = addresses_first[strip_start:strip_start + mvl]
            strip_second = addresses_second[strip_start:strip_start + mvl]
            for k, address in enumerate(strip_first):
                issue = self.buses.request_read(self._cycle)
                self._cycle = max(self._cycle, issue)
                stall = self._element_cycles(
                    address, first, report,
                    None if hits_first is None else hits_first[strip_start + k],
                )
                if second is not None and k < len(strip_second):
                    self.buses.request_read(self._cycle)
                    stall += self._element_cycles(
                        strip_second[k], second, report,
                        None if hits_second is None
                        else hits_second[strip_start + k],
                    )
                self._cycle += 1 + stall
                report.elements += 1
                if first.counts_results:
                    report.results += 1
                if second is not None and k < len(strip_second):
                    report.elements += 1
                    if second.counts_results:
                        report.results += 1

    def _run_load_batched(
        self,
        first: VectorLoad,
        second: VectorLoad | None,
        addr_first,
        addr_second,
        hits_first,
        hits_second,
        report: ExecutionReport,
    ) -> bool:
        """Dispatch one load operation onto the vectorised strip engine.

        Returns ``False`` when no batched mode applies, in which case the
        caller runs the scalar reference loop.  Modes, in dispatch order:

        * both streams of a pair touch memory (every MM-machine pair; CC
          pairs where both streams miss) → :meth:`_run_pair_flat`, an
          exact flat loop with the per-element machinery hoisted;
        * no stream touches memory (CC all-hit op) → O(1) per strip;
        * one active stream, contiguous all-miss prefix, pipelined misses
          (MM loads, CC initial sweeps) → per-strip
          :meth:`~repro.memory.banks.InterleavedMemory.service_many`
          closed form;
        * one active stream, sparse or conflict-stall misses (CC
          ``expect_cached`` sweeps, mixed-hit initial sweeps) →
          :meth:`~repro.memory.banks.InterleavedMemory.service_at` over
          the miss subsequence.

        The scalar loop still runs when the machine has a cache without
        ``access_many``, or when a read bus could make a grant lag the
        clock (never the case for machine-issued streams, but guarded so
        hand-driven substrates keep exact semantics).
        """
        cycle0 = self._cycle
        buses = self.buses
        if (buses.read_buses[0]._next_free > cycle0
                or buses.read_buses[1]._next_free > cycle0):
            return False
        if hits_first is None and getattr(self, "cache", None) is not None:
            return False
        mem = self.memory
        mvl = self.config.mvl
        overhead = self._strip_overhead(first)
        t_m = self.config.t_m
        n1 = first.length
        paired = min(n1, second.length) if second is not None else 0
        if hits_first is not None:
            m1 = n1 - int(np.count_nonzero(hits_first))
            m2 = (paired - int(np.count_nonzero(hits_second[:paired]))
                  if second is not None else 0)
        else:
            m1, m2 = n1, paired
        if m1 and m2:
            self._run_pair_flat(first, second, addr_first, addr_second,
                                hits_first, hits_second, report)
            return True
        n_strips = -(-n1 // mvl)
        total_overhead = n_strips * overhead
        report.overhead_cycles += total_overhead
        report.elements += n1 + paired
        if first.counts_results:
            report.results += n1
        if second is not None and second.counts_results:
            report.results += paired
        if hits_first is not None:
            report.cache_hits += (n1 + paired) - m1 - m2
            report.cache_misses += m1 + m2
        if m1:
            m, load, array, hits_active = m1, first, addr_first, hits_first
        elif m2:
            m, load, array = m2, second, addr_second
            hits_active = hits_second[:paired]
        else:
            # pure cache traffic: overhead plus one cycle per slot
            self._cycle = cycle0 + total_overhead + n1
            buses.claim_reads_batch(paired, n1 - paired, self._cycle)
            return True
        expect = hits_first is not None and load.expect_cached
        prefix = hits_active is None or not bool(hits_active[:m].any())
        if not expect and prefix:
            # contiguous all-miss prefix: a pipelined one-per-cycle stream
            # (the MM-model shape) — per-strip closed-form recurrence
            period = mem.scheme.exact_stride_period(load.stride)
            free = mem._bank_free_at
            first_list = key = None
            if period is not None:
                # Periodic bank sequence: the op only ever touches the
                # ``p_seen`` distinct banks of its first period, and
                # their first visits are elements ``0..p_seen-1``.
                p_seen = min(period, m)
                first_banks = mem.scheme.bank_of_batch(array[:p_seen])
                if t_m <= period:
                    # Zero-stall whole-op form.  Same-bank accesses sit
                    # at least ``period >= t_m`` issue slots apart (strip
                    # overheads only widen the gap), so the op never
                    # stalls on itself; with no stalls element ``k``
                    # issues exactly at
                    # ``cycle0 + (k // mvl + 1) * overhead + k``, so the
                    # op is stall-free iff every touched bank's residual
                    # busy time clears its first-visit issue cycle.  The
                    # geometry (visit counts, issue/finish offsets) is
                    # base- and cycle-independent, hence memoized.
                    geo_key = (period, m, overhead)
                    cached = self._zero_stall_geometry.get(geo_key)
                    if cached is None:
                        offs = np.arange(p_seen, dtype=np.int64)
                        issue_off = (offs // mvl + 1) * overhead + offs
                        reps = (m - 1 - offs) // period
                        last_k = offs + period * reps
                        finish_off = ((last_k // mvl + 1) * overhead
                                      + last_k + t_m)
                        cached = (reps + 1, issue_off, finish_off)
                        if len(self._zero_stall_geometry) < 256:
                            self._zero_stall_geometry[geo_key] = cached
                    bank_counts, issue_off, finish_off = cached
                    free_arr = np.asarray(free, dtype=np.int64)
                    if bool((free_arr[first_banks]
                             <= cycle0 + issue_off).all()):
                        free_arr[first_banks] = cycle0 + finish_off
                        mem._bank_free_at = free_arr.tolist()
                        mem._record_batch(first_banks, bank_counts, m, 0)
                        end = cycle0 + total_overhead + n1
                        self._cycle = end
                        buses.claim_reads_batch(paired, n1 - paired, end)
                        return True
                # Stalling op: the residual busy offsets of the touched
                # banks (relative to cycle0) fully determine the op's
                # stalls, end cycle, and the banks' new busy offsets —
                # sweeps repeat the same op shape back-to-back and the
                # bank state reaches a fixed point relative to the op
                # start, so replay the memoized outcome when available.
                # A bank already free at cycle0 can never stall the op
                # and is overwritten by the op's own visits, so negative
                # offsets clamp to zero without changing the outcome.
                first_list = first_banks.tolist()
                deltas = tuple(
                    max(free[b] - cycle0, 0) for b in first_list
                )
                key = (n1, m, period, overhead, deltas)
                memo = self._strip_service_memo.get(key)
                if memo is not None:
                    stall, end_off, new_deltas, bank_counts = memo
                    for b, nd in zip(first_list, new_deltas):
                        free[b] = cycle0 + nd
                    mem._record_batch(first_list, bank_counts, m, stall)
                    report.bank_stall_cycles += stall
                    end = cycle0 + end_off
                    self._cycle = end
                    buses.claim_reads_batch(paired, n1 - paired, end)
                    return True
            bank_stall = 0
            cycle = cycle0
            for strip_start in range(0, n1, mvl):
                cycle += overhead
                strip_len = min(mvl, n1 - strip_start)
                active = min(m, strip_start + strip_len) - strip_start
                if active > 0:
                    batch = mem.service_many(
                        array[strip_start:strip_start + active], cycle,
                        stride=load.stride,
                    )
                    bank_stall += batch.stall_cycles
                    cycle = batch.final_cycle
                    cycle += strip_len - active
                else:
                    cycle += strip_len
            report.bank_stall_cycles += bank_stall
            if first_list is not None and len(self._strip_service_memo) < 4096:
                free = mem._bank_free_at
                self._strip_service_memo[key] = (
                    bank_stall,
                    cycle - cycle0,
                    tuple(free[b] - cycle0 for b in first_list),
                    [(m - 1 - j) // period + 1
                     for j in range(len(first_list))],
                )
            self._cycle = cycle
            buses.claim_reads_batch(paired, n1 - paired, cycle)
            return True
        # sparse misses: conflict-stall sweeps space every access t_m+1
        # apart (vectorised inside service_at); mixed-hit initial sweeps
        # take service_at's exact sequential fallback
        positions = np.flatnonzero(~hits_active)
        strip_of = positions // mvl
        at_cycles = cycle0 + (strip_of + 1) * overhead + positions
        if expect:
            at_cycles = at_cycles + t_m * np.arange(m, dtype=np.int64)
        batch = mem.service_at(array[positions], at_cycles)
        report.bank_stall_cycles += batch.stall_cycles
        end = cycle0 + total_overhead + n1 + batch.stall_cycles
        if expect:
            report.miss_stall_cycles += t_m * m
            end += t_m * m
        self._cycle = end
        buses.claim_reads_batch(paired, n1 - paired, end)
        return True

    def _run_pair_flat(
        self,
        first: VectorLoad,
        second: VectorLoad,
        addr_first,
        addr_second,
        hits_first,
        hits_second,
        report: ExecutionReport,
    ) -> None:
        """Exact flat-loop engine for pairs where both streams touch memory.

        Replicates the scalar reference cycle-for-cycle with the
        interpreter overhead hoisted: bank state, hit flags and counters
        live in locals, the per-element ``MemoryReply`` allocation and bus
        steering are bypassed, and stats/bus grants are claimed in one
        batch at the end.
        """
        mvl = self.config.mvl
        overhead = self._strip_overhead(first)
        t_m = self.memory.access_time
        cycle = self._cycle
        n1 = first.length
        paired = min(n1, second.length)
        pen1 = t_m if (hits_first is not None and first.expect_cached) else 0
        pen2 = t_m if (hits_second is not None and second.expect_cached) else 0
        if (self._backend == "compiled"
                and type(self.memory.scheme) is LowOrderInterleave):
            mem = self.memory
            free_arr = np.asarray(mem._bank_free_at, dtype=np.int64)
            counts_arr = np.zeros(mem.num_banks, dtype=np.int64)
            state = np.zeros(5, dtype=np.int64)
            state[0] = cycle
            kernels.pair_flat(
                addr_first, addr_second, hits_first, hits_second,
                paired, mvl, overhead, t_m, pen1, pen2,
                mem.num_banks - 1, free_arr, counts_arr, state,
            )
            cycle, bank_stall, miss_penalty, accesses, n_strips = (
                state.tolist()
            )
            mem._bank_free_at = free_arr.tolist()
            mem.stats.accesses += accesses
            mem.stats.stall_cycles += bank_stall
            mem.stats._bank_counts_batched += counts_arr
        else:
            bank_of = self.memory.scheme.bank_of
            free = self.memory._bank_free_at
            a1 = addr_first.tolist()
            a2 = addr_second.tolist()
            h1 = hits_first.tolist() if hits_first is not None else None
            h2 = hits_second.tolist() if hits_second is not None else None
            counts: dict[int, int] = {}
            bank_stall = 0
            miss_penalty = 0
            accesses = 0
            n_strips = 0
            for strip_start in range(0, n1, mvl):
                n_strips += 1
                cycle += overhead
                for k in range(strip_start, min(strip_start + mvl, n1)):
                    stall = 0
                    if h1 is None or not h1[k]:
                        bank = bank_of(a1[k])
                        ready = free[bank]
                        wait = ready - cycle if ready > cycle else 0
                        free[bank] = cycle + wait + t_m
                        counts[bank] = counts.get(bank, 0) + 1
                        accesses += 1
                        bank_stall += wait
                        stall = wait + pen1
                        miss_penalty += pen1
                    if k < paired and (h2 is None or not h2[k]):
                        bank = bank_of(a2[k])
                        ready = free[bank]
                        wait = ready - cycle if ready > cycle else 0
                        free[bank] = cycle + wait + t_m
                        counts[bank] = counts.get(bank, 0) + 1
                        accesses += 1
                        bank_stall += wait
                        stall += wait + pen2
                        miss_penalty += pen2
                    cycle += 1 + stall
            self.memory._record_batch(counts.keys(), counts.values(),
                                      accesses, bank_stall)
        report.overhead_cycles += n_strips * overhead
        report.bank_stall_cycles += bank_stall
        report.miss_stall_cycles += miss_penalty
        if hits_first is not None:
            hit_count = (int(np.count_nonzero(hits_first))
                         + int(np.count_nonzero(hits_second[:paired])))
            report.cache_hits += hit_count
            report.cache_misses += (n1 + paired) - hit_count
        report.elements += n1 + paired
        if first.counts_results:
            report.results += n1
        if second.counts_results:
            report.results += paired
        self.buses.claim_reads_batch(paired, n1 - paired, cycle)
        self._cycle = cycle

    def _run_store(self, op: VectorStore, report: ExecutionReport) -> None:
        if self.write_buffer is not None:
            if self.fast_path:
                stall, cycle = self.write_buffer.store_many(
                    op.address_array(), self._cycle
                )
                report.store_stall_cycles += stall
                report.elements += op.length
                self._cycle = cycle
                return
            for address in op.addresses():
                stall = self.write_buffer.store(address, self._cycle)
                report.store_stall_cycles += stall
                self._cycle += 1 + stall
                report.elements += 1
            return
        # the paper's assumption: buffered, never stalls — one store per
        # cycle, so the whole stream is a closed-form bank-queue update
        if self.fast_path and self.buses.write_bus._next_free <= self._cycle:
            self.memory.service_writes(op.address_array(), self._cycle,
                                       stride=op.stride)
            self.buses.write_bus.claim_batch(op.length, self._cycle + op.length)
            self._cycle += op.length
            report.elements += op.length
            return
        for address in op.addresses():
            grant = self.buses.request_write(self._cycle)
            self.memory.access(address, grant)  # occupies the bank
            self._cycle += 1
            report.elements += 1


class MMMachine(VectorMachine):
    """The cacheless memory-register machine of Figure 2.

    Example:
        >>> machine = MMMachine(MachineConfig(num_banks=8,
        ...                                   memory_access_time=4))
        >>> report = machine.execute([VectorLoad(base=0, stride=1, length=64)])
        >>> report.bank_stall_cycles
        0
    """

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        reply = self.memory.access(address, self._cycle)
        report.bank_stall_cycles += reply.stall_cycles
        return reply.stall_cycles


class CCMachine(VectorMachine):
    """The cache-based machine of Figure 3.

    Args:
        config: machine parameters.
        cache: any :class:`~repro.cache.base.Cache`; the machine model does
            not care whether it is direct-, set-associative- or
            prime-mapped.
        scheme: optional interleave scheme override.
        start_registers: Section 2.3's cost/performance trade.  ``True``
            (default) pays for registers that cache each vector's
            converted starting index, so re-entering a vector is free;
            ``False`` saves the registers and instead re-folds the start
            address on every re-entry — ``start_recalc_cycles`` extra
            cycles per cached vector start ("1 or 2 more cycles at each
            vector start-up time").
        start_recalc_cycles: the re-folding cost when
            ``start_registers=False`` (the paper: one c-bit add per
            address chunk, so 1–2 cycles for realistic layouts).

    Example:
        >>> from repro.cache import PrimeMappedCache
        >>> machine = CCMachine(MachineConfig(num_banks=8,
        ...                                   memory_access_time=4,
        ...                                   cache_lines=31),
        ...                     PrimeMappedCache(c=5))
        >>> _ = machine.execute([VectorLoad(base=0, stride=3, length=31)])
        >>> rerun = machine.execute([VectorLoad(base=0, stride=3, length=31,
        ...                                     expect_cached=True)])
        >>> rerun.cache_misses
        0
    """

    def __init__(
        self,
        config: MachineConfig,
        cache: Cache,
        scheme: InterleaveScheme | None = None,
        *,
        start_registers: bool = True,
        start_recalc_cycles: int = 2,
        write_buffer_depth: int | None = None,
        fast_path: bool = True,
        backend: str | None = None,
    ) -> None:
        super().__init__(config, scheme, write_buffer_depth=write_buffer_depth,
                         fast_path=fast_path, backend=backend)
        self.cache = cache
        if start_recalc_cycles < 0:
            raise ValueError("start_recalc_cycles must be non-negative")
        self.start_registers = start_registers
        self.start_recalc_cycles = start_recalc_cycles
        # A two-level hierarchy (any cache exposing ``l2_hit_time``)
        # composes a per-level miss penalty: L1 hit free, L2 hit a
        # non-pipelined ``l2_hit_time`` stall, full miss the usual
        # memory service.  ``None`` for single-level caches.
        self._l2_time = getattr(cache, "l2_hit_time", None)

    @property
    def stride_modulus(self) -> int:
        return self.cache.total_lines

    def reset(self) -> None:
        super().reset()
        self.cache.reset()

    def _strip_overhead(self, load: VectorLoad) -> int:
        base = self.config.strip_overhead + self.config.t_start
        if load.expect_cached:
            base -= self.config.t_m  # operands come from the cache
            if not self.start_registers:
                # re-fold the starting index instead of reading a register
                base += self.start_recalc_cycles
        return base

    def _probe_loads(self, addresses_first, addresses_second):
        if self._l2_time is not None:
            # A hit bitmap cannot carry which *level* served each access,
            # and the batched modes know nothing of L2 service stalls, so
            # hierarchical machines run the per-element reference loop
            # (which reads ``cache.last_level`` after each access).
            return None, None
        access_many = getattr(self.cache, "access_many", None)
        if access_many is None:
            return None, None
        if addresses_second is None:
            hits = access_many(addresses_first, return_hits=True,
                               backend=self._backend).hits
            return hits, np.empty(0, dtype=bool)
        n1 = len(addresses_first)
        n2 = len(addresses_second)
        # Issue order interleaves the two streams pairwise (the strip loop
        # slices both by the same offsets); any second-stream tail beyond
        # the first stream is replayed by a recursive _run_load_strips
        # call, which probes itself.
        paired = min(n1, n2)
        interleaved = np.empty(2 * paired + (n1 - paired), dtype=np.int64)
        interleaved[0:2 * paired:2] = addresses_first[:paired]
        if paired:
            interleaved[1:2 * paired:2] = addresses_second[:paired]
        interleaved[2 * paired:] = addresses_first[paired:]
        hits = access_many(interleaved, return_hits=True,
                           backend=self._backend).hits
        hits_first = np.empty(n1, dtype=bool)
        hits_first[:paired] = hits[0:2 * paired:2]
        hits_first[paired:] = hits[2 * paired:]
        return hits_first, hits[1:2 * paired:2]

    def _element_cycles(
        self, address: int, load: VectorLoad, report: ExecutionReport,
        hit: bool | None = None,
    ) -> int:
        level = 1
        if hit is None:
            hit = self.cache.access(address).hit
            if hit and self._l2_time is not None:
                level = self.cache.last_level
        if hit:
            report.cache_hits += 1
            if level == 2:
                # served by L2: a non-pipelined stall like a short miss
                # penalty; the memory banks are never touched
                report.l2_hits += 1
                report.miss_stall_cycles += self._l2_time
                return self._l2_time
            return 0
        report.cache_misses += 1
        if load.expect_cached:
            # A conflict the processor must stall out: the full memory
            # access time, not pipelinable (plus any bank conflict).
            reply = self.memory.access(address, self._cycle)
            report.bank_stall_cycles += reply.stall_cycles
            report.miss_stall_cycles += self.config.t_m
            return reply.stall_cycles + self.config.t_m
        # Initial loading: compulsory misses stream through the pipelined
        # memory exactly like the MM-model.
        reply = self.memory.access(address, self._cycle)
        report.bank_stall_cycles += reply.stall_cycles
        return reply.stall_cycles
