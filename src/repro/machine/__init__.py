"""Executable cycle-level machine models: the cacheless MM-machine and the
cache-based CC-machine of Figures 2 and 3, plus a driver that materialises
VCM workloads for cross-validation against the analytical equations."""

from repro.machine.ops import (
    LoadPair,
    Operation,
    VectorCompute,
    VectorLoad,
    VectorStore,
)
from repro.machine.programs import (
    fft_program,
    jacobi_program,
    matmul_program,
    strided_reuse_program,
)
from repro.machine.registers import (
    AllocationReport,
    RegisterAllocator,
    VectorRegisterFile,
)
from repro.machine.report import ExecutionReport
from repro.machine.trace_runner import compare_machines_on_trace, run_trace
from repro.machine.vcm_driver import DrivenResult, VCMDriver
from repro.machine.vector_machine import CCMachine, MMMachine, VectorMachine

__all__ = [
    "AllocationReport",
    "CCMachine",
    "compare_machines_on_trace",
    "DrivenResult",
    "ExecutionReport",
    "LoadPair",
    "MMMachine",
    "Operation",
    "RegisterAllocator",
    "VCMDriver",
    "VectorCompute",
    "VectorLoad",
    "VectorMachine",
    "VectorRegisterFile",
    "VectorStore",
    "fft_program",
    "jacobi_program",
    "matmul_program",
    "run_trace",
    "strided_reuse_program",
]
