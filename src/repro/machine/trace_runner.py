"""Run recorded address traces on the cycle-level machines.

This is the bridge between the *real* workloads (blocked matmul / LU /
FFT, which emit :class:`~repro.trace.records.Trace` objects while
computing verified results) and the executable machines: every reference
is issued through the machine's memory system with the paper's timing
rules, yielding end-to-end cycle counts instead of just hit ratios.

Costing rules, matching the analytical model's premises:

* references issue one per cycle;
* on the MM-machine every read goes to the interleaved banks and pays any
  bank-busy stall; writes are buffered and never stall;
* on the CC-machine a read probes the cache: hits are free, *compulsory*
  misses (first touch — the classifier decides) stream through the
  pipelined memory like an initial vector load, and all other misses
  stall the full memory access time;
* cache writes follow the cache's write-allocate policy and never stall
  (write buffers), but dirty evictions are counted.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.cache.base import MISS_KIND_CODES
from repro.cache.stats import MissKind
from repro.machine.report import ExecutionReport
from repro.machine.vector_machine import CCMachine, MMMachine, VectorMachine
from repro.memory.banks import LowOrderInterleave
from repro.trace.records import Trace

__all__ = ["run_trace", "compare_machines_on_trace"]

_COMPULSORY = MISS_KIND_CODES[MissKind.COMPULSORY]


def _kernel_bank_mask(memory) -> int | None:
    """Bank mask for the compiled timing kernels, or ``None`` when the
    interleave scheme is not plain low-order (prime/skewed ablations run
    on the numpy engines instead)."""
    if type(memory.scheme) is LowOrderInterleave:
        return memory.num_banks - 1
    return None


def run_trace(
    machine: VectorMachine, trace: Trace, *, backend: str | None = None
) -> ExecutionReport:
    """Issue every access of ``trace`` on ``machine``; returns the report.

    The machine is reset first so reports are a function of the trace
    alone.  On a CC-machine the cache must have been built with
    ``classify_misses=True`` (the default) — the compulsory/conflict
    distinction drives the stall rule.

    ``backend`` selects the timing engine: ``"scalar"`` replays per access
    through the bus/bank objects, ``"numpy"`` runs the flat-local chunk
    loops, ``"compiled"`` runs the :mod:`repro.kernels` timing kernels
    (falling back to numpy when the interleave scheme has no kernel
    form).  All engines stream ``trace.iter_blocks`` chunk by chunk —
    peak memory is O(chunk) — and produce identical reports; the
    ``kernel-backend`` oracle sweeps them against each other.
    """
    backend = kernels.resolve_backend(backend)
    machine.reset()
    report = ExecutionReport()
    start = machine._cycle

    mask = _kernel_bank_mask(machine.memory)
    if isinstance(machine, CCMachine):
        if backend == "scalar":
            _run_cached_scalar(machine, trace, report)
        elif backend == "compiled" and mask is not None:
            _run_cached_compiled(machine, trace, report, mask)
        else:
            _run_cached(machine, trace, report, backend)
    else:
        if backend == "scalar":
            _run_uncached_scalar(machine, trace, report)
        elif backend == "compiled" and mask is not None:
            _run_uncached_compiled(machine, trace, report, mask)
        else:
            _run_uncached(machine, trace, report)

    report.cycles = machine._cycle - start
    report.elements = len(trace)
    report.results = len(trace)
    return report


def _run_uncached(machine: MMMachine, trace: Trace,
                  report: ExecutionReport) -> None:
    # Flat-local transcription of the per-access rules: the loop carries
    # the clock, bank state, and bus/stat counters in locals across the
    # trace's sealed chunks and writes them back once.  Because the clock
    # strictly increases between bus requests, read grants alternate
    # read0/read1 and no request ever waits, so the bus writeback is a
    # pure counter update.
    mem = machine.memory
    bank_of = mem.scheme.bank_of
    free = mem._bank_free_at
    t_m = mem.access_time
    bank_counts = mem.stats._bank_counts
    cycle = machine._cycle
    bank_stall = 0
    write_stall = 0
    reads = 0
    writes_seen = 0
    last_read = [0, 0]
    last_write = 0
    for chunk, chunk_writes in trace.iter_blocks():
        address_list = chunk.tolist()
        write_list = (chunk_writes.tolist()
                      if chunk_writes is not None else None)
        for i, address in enumerate(address_list):
            bank = bank_of(address)
            ready = free[bank]
            stall = ready - cycle if ready > cycle else 0
            free[bank] = cycle + stall + t_m
            bank_counts[bank] += 1
            if write_list is not None and write_list[i]:
                # buffered: the stall delays the bank, never the clock
                write_stall += stall
                writes_seen += 1
                last_write = cycle
                cycle += 1
            else:
                bank_stall += stall
                last_read[reads & 1] = cycle
                reads += 1
                cycle += 1 + stall
    report.bank_stall_cycles += bank_stall
    machine._cycle = cycle
    stats = mem.stats
    stats.accesses += reads + writes_seen
    stats.stall_cycles += bank_stall + write_stall
    bus0, bus1 = machine.buses.read_buses
    bus0.transfers += (reads + 1) // 2
    bus1.transfers += reads // 2
    if reads:
        bus0._next_free = max(bus0._next_free, last_read[0] + 1)
    if reads > 1:
        bus1._next_free = max(bus1._next_free, last_read[1] + 1)
    write_bus = machine.buses.write_bus
    write_bus.transfers += writes_seen
    if writes_seen:
        write_bus._next_free = max(write_bus._next_free, last_write + 1)


def _run_uncached_scalar(machine: MMMachine, trace: Trace,
                         report: ExecutionReport) -> None:
    """Per-access MM reference: every reference goes through the bus and
    bank objects one at a time (the ground truth the flat and compiled
    engines are swept against)."""
    mem = machine.memory
    for access in trace:
        cycle = machine._cycle
        if access.write:
            machine.buses.request_write(cycle)
            mem.access(access.address, cycle)
            machine._cycle = cycle + 1
        else:
            machine.buses.request_read(cycle)
            reply = mem.access(access.address, cycle)
            report.bank_stall_cycles += reply.stall_cycles
            machine._cycle = cycle + 1 + reply.stall_cycles


def _run_uncached_compiled(machine: MMMachine, trace: Trace,
                           report: ExecutionReport, mask: int) -> None:
    """MM timing through :func:`repro.kernels.mm_timing`; bank state and
    the clock/counter state persist in int64 arrays across chunks."""
    mem = machine.memory
    free = np.asarray(mem._bank_free_at, dtype=np.int64)
    counts = np.zeros(mem.num_banks, dtype=np.int64)
    state = np.zeros(8, dtype=np.int64)
    state[0] = machine._cycle
    t_m = mem.access_time
    for addresses, writes in trace.iter_blocks():
        kernels.mm_timing(addresses, writes, mask, t_m, free, counts, state)
    (cycle, bank_stall, write_stall, reads, writes_seen,
     last_read0, last_read1, last_write) = state.tolist()
    mem._bank_free_at = free.tolist()
    stats = mem.stats
    stats.accesses += reads + writes_seen
    stats.stall_cycles += bank_stall + write_stall
    stats._bank_counts_batched += counts
    report.bank_stall_cycles += bank_stall
    machine._cycle = cycle
    bus0, bus1 = machine.buses.read_buses
    bus0.transfers += (reads + 1) // 2
    bus1.transfers += reads // 2
    if reads:
        bus0._next_free = max(bus0._next_free, last_read0 + 1)
    if reads > 1:
        bus1._next_free = max(bus1._next_free, last_read1 + 1)
    write_bus = machine.buses.write_bus
    write_bus.transfers += writes_seen
    if writes_seen:
        write_bus._next_free = max(write_bus._next_free, last_write + 1)


def _run_cached_compiled(machine: CCMachine, trace: Trace,
                         report: ExecutionReport, mask: int) -> None:
    """CC timing through :func:`repro.kernels.cc_timing`.

    Each chunk's probe sequence still runs through the cache's batched
    path (the three-C classifier the stall rule needs is a dict shadow,
    so probes use the numpy engines); the per-access timing loop over the
    probe outcomes is the compiled part.
    """
    mem = machine.memory
    access_many = getattr(machine.cache, "access_many", None)
    if access_many is None:
        _run_cached_scalar(machine, trace, report)
        return
    t_m = machine.config.t_m
    free = np.asarray(mem._bank_free_at, dtype=np.int64)
    counts = np.zeros(mem.num_banks, dtype=np.int64)
    state = np.zeros(9, dtype=np.int64)
    state[0] = machine._cycle
    mem_t_m = mem.access_time
    for addresses, writes in trace.iter_blocks():
        batch = access_many(addresses, writes, return_hits=True,
                            return_kinds=True, backend="compiled")
        kernels.cc_timing(addresses, writes, batch.hits, batch.miss_kinds,
                          mask, mem_t_m, t_m, _COMPULSORY,
                          free, counts, state)
    (cycle, cache_hits, misses, bank_stall, conflicts, writes_seen,
     last_read0, last_read1, last_write) = state.tolist()
    mem._bank_free_at = free.tolist()
    report.cache_hits += cache_hits
    report.cache_misses += misses
    report.bank_stall_cycles += bank_stall
    report.miss_stall_cycles += t_m * conflicts
    machine._cycle = cycle
    stats = mem.stats
    stats.accesses += misses
    stats.stall_cycles += bank_stall
    stats._bank_counts_batched += counts
    bus0, bus1 = machine.buses.read_buses
    bus0.transfers += (misses + 1) // 2
    bus1.transfers += misses // 2
    if misses:
        bus0._next_free = max(bus0._next_free, last_read0 + 1)
    if misses > 1:
        bus1._next_free = max(bus1._next_free, last_read1 + 1)
    write_bus = machine.buses.write_bus
    write_bus.transfers += writes_seen
    if writes_seen:
        write_bus._next_free = max(write_bus._next_free, last_write + 1)


def _run_cached(machine: CCMachine, trace: Trace,
                report: ExecutionReport, backend: str | None = None) -> None:
    t_m = machine.config.t_m
    access_many = getattr(machine.cache, "access_many", None)
    if access_many is None:
        _run_cached_scalar(machine, trace, report)
        return
    # The cache's state evolution does not depend on the clock, so each
    # chunk's probe sequence can run on the batched path up front (chunks
    # stream zero-copy off the trace's columnar store, in order); the
    # timing loop then only touches the banks on misses.
    # Flat-local transcription of the per-access rules (see
    # ``_run_uncached``): only misses touch the banks and the read buses,
    # hits and buffered writes just tick the clock, and the strictly
    # increasing clock means no bus request ever waits.  The locals
    # persist across chunks, so chunking does not change the timing.
    mem = machine.memory
    bank_of = mem.scheme.bank_of
    free = mem._bank_free_at
    mem_t_m = mem.access_time
    bank_counts = mem.stats._bank_counts
    cycle = machine._cycle
    cache_hits = 0
    misses = 0
    bank_stall = 0
    conflicts = 0
    last_read = [0, 0]
    writes_seen = 0
    last_write = 0
    for addresses, writes in trace.iter_blocks():
        batch = access_many(addresses, writes,
                            return_hits=True, return_kinds=True,
                            backend=backend)
        hits = batch.hits.tolist()
        kinds = batch.miss_kinds.tolist()
        address_list = addresses.tolist()
        write_list = writes.tolist() if writes is not None else None
        for i, address in enumerate(address_list):
            if write_list is not None and write_list[i]:
                writes_seen += 1
                last_write = cycle
                cycle += 1
                continue
            if hits[i]:
                cache_hits += 1
                cycle += 1
                continue
            bank = bank_of(address)
            ready = free[bank]
            stall = ready - cycle if ready > cycle else 0
            free[bank] = cycle + stall + mem_t_m
            bank_counts[bank] += 1
            bank_stall += stall
            last_read[misses & 1] = cycle
            misses += 1
            if kinds[i] == _COMPULSORY:
                # initial loading pipelines: only the bank conflict shows
                cycle += 1 + stall
            else:
                conflicts += 1
                cycle += 1 + stall + t_m
    report.cache_hits += cache_hits
    report.cache_misses += misses
    report.bank_stall_cycles += bank_stall
    report.miss_stall_cycles += t_m * conflicts
    machine._cycle = cycle
    stats = mem.stats
    stats.accesses += misses
    stats.stall_cycles += bank_stall
    bus0, bus1 = machine.buses.read_buses
    bus0.transfers += (misses + 1) // 2
    bus1.transfers += misses // 2
    if misses:
        bus0._next_free = max(bus0._next_free, last_read[0] + 1)
    if misses > 1:
        bus1._next_free = max(bus1._next_free, last_read[1] + 1)
    write_bus = machine.buses.write_bus
    write_bus.transfers += writes_seen
    if writes_seen:
        write_bus._next_free = max(write_bus._next_free, last_write + 1)


def _run_cached_scalar(machine: CCMachine, trace: Trace,
                       report: ExecutionReport) -> None:
    """Per-access reference path for caches without ``access_many``."""
    t_m = machine.config.t_m
    for access in trace:
        result = machine.cache.access(access.address, write=access.write)
        if access.write:
            machine.buses.request_write(machine._cycle)
            machine._cycle += 1
            continue
        if result.hit:
            report.cache_hits += 1
            machine._cycle += 1
            continue
        report.cache_misses += 1
        machine.buses.request_read(machine._cycle)
        reply = machine.memory.access(access.address, machine._cycle)
        report.bank_stall_cycles += reply.stall_cycles
        if result.miss_kind is MissKind.COMPULSORY:
            # initial loading pipelines: only the bank conflict shows
            machine._cycle += 1 + reply.stall_cycles
        else:
            report.miss_stall_cycles += t_m
            machine._cycle += 1 + reply.stall_cycles + t_m


def compare_machines_on_trace(
    trace: Trace,
    machines: dict[str, VectorMachine],
    *,
    backend: str | None = None,
):
    """Run one trace on several machines; returns ``{label: report}``."""
    return {label: run_trace(machine, trace, backend=backend)
            for label, machine in machines.items()}
