"""Vector register file: the resource a cache competes with.

The paper's introduction argues registers alone cannot replace a vector
cache: "not only is a register file relatively small that can hardly hold
the working set of a program but also it requires extra efforts in
software to manage it."  This module makes both halves of that sentence
concrete:

* :class:`VectorRegisterFile` — the architectural resource: ``count``
  registers of ``MVL`` words each (a Cray-1-style 8 x 64 = 512 words;
  the paper's 8K-line cache holds 16x more).
* :class:`RegisterAllocator` — the "extra efforts in software": an LRU
  spill allocator that maps the vector operands of a
  :mod:`repro.machine.programs` instruction stream onto registers and
  counts how many loads are *re-loads* of spilled operands.  Running the
  blocked kernels through it measures how much of their reuse a
  register-only machine actually captures — the quantity the cache is
  competing for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.machine.ops import LoadPair, VectorLoad, VectorStore

__all__ = ["VectorRegisterFile", "AllocationReport", "RegisterAllocator"]


@dataclass(frozen=True)
class VectorRegisterFile:
    """The register resource of the machine models.

    Attributes:
        count: number of vector registers (classic machines: 8).
        mvl: words per register (the models' maximum vector length, 64).
    """

    count: int = 8
    mvl: int = 64

    def __post_init__(self) -> None:
        if self.count < 1 or self.mvl < 1:
            raise ValueError("register count and MVL must be positive")

    @property
    def capacity_words(self) -> int:
        """Total words the file can hold at once."""
        return self.count * self.mvl

    def working_set_fits(self, words: int) -> bool:
        """Whether a working set of ``words`` fits entirely in registers."""
        return words <= self.capacity_words


@dataclass
class AllocationReport:
    """Outcome of allocating one program's operands onto registers.

    Attributes:
        vector_loads: distinct load operations in the program.
        register_hits: loads whose operand was still register-resident
            (a cache would not even see these).
        spilled_reloads: loads that had to refetch an operand evicted
            from the register file — the traffic a vector cache absorbs.
        max_live: the largest number of simultaneously live operands.
    """

    vector_loads: int = 0
    register_hits: int = 0
    spilled_reloads: int = 0
    max_live: int = 0
    spilled_operands: set = field(default_factory=set)

    @property
    def reuse_captured(self) -> float:
        """Fraction of repeat loads the register file captured."""
        repeats = self.register_hits + self.spilled_reloads
        return self.register_hits / repeats if repeats else 1.0


class RegisterAllocator:
    """LRU allocation of vector operands onto a register file.

    An operand is identified by its ``(base, stride, length)`` descriptor
    — what a compiler would hold in a vector register between uses.
    Operands longer than ``MVL`` occupy one register per strip.

    Example:
        >>> from repro.machine.programs import strided_reuse_program
        >>> allocator = RegisterAllocator(VectorRegisterFile(count=8))
        >>> report = allocator.allocate(strided_reuse_program(0, 1, 64, 4))
        >>> report.register_hits     # 3 reuse sweeps, all register-resident
        3
    """

    def __init__(self, register_file: VectorRegisterFile) -> None:
        self.register_file = register_file

    def _operand_key(self, load: VectorLoad) -> tuple[int, int, int]:
        return (load.base, load.stride, load.length)

    def _registers_needed(self, load: VectorLoad) -> int:
        return -(-load.length // self.register_file.mvl)

    def allocate(self, operations) -> AllocationReport:
        """Walk a program, tracking register residency of load operands."""
        report = AllocationReport()
        resident: OrderedDict[tuple, int] = OrderedDict()  # key -> regs used
        used = 0

        def evict_until(space: int) -> None:
            nonlocal used
            capacity = self.register_file.count
            while resident and used + space > capacity:
                key, regs = resident.popitem(last=False)
                used -= regs
                report.spilled_operands.add(key)

        def touch_load(load: VectorLoad) -> None:
            nonlocal used
            report.vector_loads += 1
            key = self._operand_key(load)
            if key in resident:
                resident.move_to_end(key)
                report.register_hits += 1
                return
            if key in report.spilled_operands:
                report.spilled_reloads += 1
            regs = min(self._registers_needed(load),
                       self.register_file.count)
            evict_until(regs)
            resident[key] = regs
            used += regs
            report.max_live = max(report.max_live, used)

        for op in operations:
            if isinstance(op, VectorLoad):
                touch_load(op)
            elif isinstance(op, LoadPair):
                touch_load(op.first)
                touch_load(op.second)
            elif isinstance(op, VectorStore):
                continue  # stores read a register already counted
        return report
