"""Execution reports produced by the machine simulators.

Every simulated run returns an :class:`ExecutionReport`: total cycles,
element throughput, and a stall breakdown that mirrors the analytical
model's terms (bank conflicts vs. cache-miss stalls vs. start-up
overheads), so the cross-validation tests can compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExecutionReport"]


@dataclass
class ExecutionReport:
    """Cycle accounting of one simulated program or block.

    Attributes:
        cycles: total simulated cycles.
        elements: vector elements processed (load/store/compute results).
        results: elements counted as "results" for the paper's
            cycles-per-result measure (one per element of the first
            stream per sweep; a second simultaneously loaded stream
            contributes operands, not results).
        bank_stall_cycles: cycles lost waiting for busy memory banks.
        miss_stall_cycles: cycles lost on non-pipelined cache misses.
        store_stall_cycles: cycles lost to a full write buffer (zero under
            the paper's infinite-buffer assumption).
        overhead_cycles: loop/strip-mining/start-up cycles.
        cache_hits / cache_misses: accesses through the vector cache.
        l2_hits: the subset of ``cache_hits`` served by the second level
            of a two-level hierarchy (always zero for single-level
            caches); each costs the hierarchy's ``l2_hit_time`` stall,
            accounted under ``miss_stall_cycles``.
    """

    cycles: int = 0
    elements: int = 0
    results: int = 0
    bank_stall_cycles: int = 0
    miss_stall_cycles: int = 0
    store_stall_cycles: int = 0
    overhead_cycles: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    l2_hits: int = 0

    @property
    def cycles_per_element(self) -> float:
        """Average cycles per processed element; 0.0 for an empty run."""
        return self.cycles / self.elements if self.elements else 0.0

    @property
    def cycles_per_result(self) -> float:
        """The paper's plotted measure: cycles over result elements."""
        return self.cycles / self.results if self.results else 0.0

    @property
    def miss_ratio(self) -> float:
        """Cache miss ratio of the run (0.0 when no cache was involved)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    def merge(self, other: "ExecutionReport") -> "ExecutionReport":
        """Accumulate another report into this one (returns self)."""
        self.cycles += other.cycles
        self.elements += other.elements
        self.results += other.results
        self.bank_stall_cycles += other.bank_stall_cycles
        self.miss_stall_cycles += other.miss_stall_cycles
        self.store_stall_cycles += other.store_stall_cycles
        self.overhead_cycles += other.overhead_cycles
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.l2_hits += other.l2_hits
        return self
