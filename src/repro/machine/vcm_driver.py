"""Drive a machine simulator with a VCM-shaped synthetic workload.

The analytical model reasons about expectations; this driver materialises
the same stochastic workload — blocks of ``B`` elements swept ``R`` times,
a ``P_ds`` fraction of the work as double-stream accesses, strides drawn
from the unit-or-uniform distribution — as a concrete instruction stream
with a seeded RNG, and runs it on an executable machine.  Averaged over
seeds, the simulator's cycles-per-result should track the analytical
prediction; the cross-validation tests (and ``benchmarks/
bench_validation.py``) check exactly that.

Workload construction mirrors Section 3.1's "imagined matrix": each sweep
of the first vector is cut into ``~1/P_ds`` column pieces of length
``~B * P_ds``; every last piece of a sweep is a double-stream access that
also loads the second vector.  The first sweep of a block is an initial
(pipelined) load; the remaining ``R - 1`` sweeps expect cached data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analytical.base import ceil_div
from repro.analytical.vcm import VCM
from repro.machine.ops import LoadPair, VectorLoad
from repro.machine.report import ExecutionReport
from repro.machine.vector_machine import CCMachine, VectorMachine

__all__ = ["VCMDriver", "DrivenResult"]


@dataclass(frozen=True)
class DrivenResult:
    """Outcome of driving one VCM workload through a machine.

    Attributes:
        report: merged cycle accounting across all blocks and sweeps.
        cycles_per_result: the paper's measure, ``cycles / (N * R)``.
    """

    report: ExecutionReport
    cycles_per_result: float


class VCMDriver:
    """Synthesises and runs VCM workloads on a machine simulator.

    Args:
        machine: an :class:`~repro.machine.vector_machine.MMMachine` or
            :class:`~repro.machine.vector_machine.CCMachine`.
        seed: RNG seed for stride/base draws (workloads are reproducible).

    Example:
        >>> from repro.analytical.base import MachineConfig
        >>> from repro.machine.vector_machine import MMMachine
        >>> driver = VCMDriver(MMMachine(MachineConfig(num_banks=16,
        ...                                            memory_access_time=4)))
        >>> vcm = VCM(blocking_factor=256, reuse_factor=2, p_ds=0.0, s2=None)
        >>> driver.run(vcm).cycles_per_result > 1.0
        True
    """

    #: spread successive vectors across a large synthetic address space
    ADDRESS_SPACE = 1 << 28

    def __init__(self, machine: VectorMachine, seed: int = 0) -> None:
        self.machine = machine
        self._rng = random.Random(seed)

    # -- draws -------------------------------------------------------------------

    def _draw_stride(self, spec, p_stride1: float) -> int:
        if isinstance(spec, int):
            return spec
        if spec != "random":
            raise ValueError(f"cannot draw a stride from spec {spec!r}")
        if self._rng.random() < p_stride1:
            return 1
        return self._rng.randint(2, self.machine.stride_modulus)

    def _draw_base(self) -> int:
        return self._rng.randrange(self.ADDRESS_SPACE)

    # -- sweep synthesis -----------------------------------------------------------

    def _sweep_ops(self, vcm: VCM, base1: int, s1: int, expect_cached: bool) -> list:
        """One sweep over a block: single-stream pieces plus double accesses.

        ``s1`` is drawn once per block by :meth:`run` — the reused sweeps
        re-traverse the *same* vector, which is what makes their misses
        conflicts rather than fresh compulsory loads.
        """
        if vcm.p_ds == 0:
            return [
                VectorLoad(
                    base=base1,
                    stride=s1,
                    length=vcm.blocking_factor,
                    expect_cached=expect_cached,
                )
            ]
        piece = max(1, round(vcm.blocking_factor * vcm.p_ds))
        ops: list = []
        offset = 0
        while offset < vcm.blocking_factor:
            length = min(piece, vcm.blocking_factor - offset)
            load = VectorLoad(
                base=base1 + offset * s1,
                stride=s1,
                length=length,
                expect_cached=expect_cached,
            )
            offset += length
            last_piece = offset >= vcm.blocking_factor
            if last_piece:
                s2 = self._draw_stride(vcm.s2, vcm.p_stride1_s2)
                second = VectorLoad(
                    base=self._draw_base(),
                    stride=s2,
                    length=piece,
                    expect_cached=False,  # the second operand streams in
                    counts_results=False,
                )
                ops.append(LoadPair(load, second))
            else:
                ops.append(load)
        return ops

    # -- the drive ------------------------------------------------------------------

    def run(self, vcm: VCM, problem_size: int | None = None) -> DrivenResult:
        """Execute the whole VCM workload; returns merged accounting."""
        n = problem_size if problem_size is not None else vcm.blocking_factor
        blocks = ceil_div(n, vcm.blocking_factor)
        reuse = max(1, round(vcm.reuse_factor))
        total = ExecutionReport()
        for _ in range(blocks):
            base1 = self._draw_base()
            s1 = self._draw_stride(vcm.s1, vcm.p_stride1_s1)
            if isinstance(self.machine, CCMachine):
                self.machine.cache.invalidate_all()  # new block, new working set
            for sweep in range(reuse):
                ops = self._sweep_ops(vcm, base1, s1, expect_cached=sweep > 0)
                total.merge(self.machine.execute(ops, add_loop_overhead=sweep == 0))
        denominator = n * reuse
        return DrivenResult(total, total.cycles / denominator)
