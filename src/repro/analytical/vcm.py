"""The paper's seven-tuple Vector Computational Model (VCM).

Section 3.1 abstracts a blocked numerical program as

    ``VCM = [B, R, P_ds, s1, s2, P_stride1(s1), P_stride1(s2)]``

* ``B`` — blocking factor: the program operates on sub-blocks of ``B``
  elements (a ``b x b`` submatrix has ``B = b^2``).
* ``R`` — reuse factor: how many times each block is swept.
* ``P_ds`` — probability a vector operation loads *two* streams from
  memory (double stream); ``P_ss = 1 - P_ds`` loads one, with the other
  operand already in a register.  The model derives the second stream's
  length as ``B * P_ds``.
* ``s1, s2`` — access strides of the two streams.  ``None`` (the paper's
  "-") marks an undefined stride for the stream that does not occur;
  an integer fixes the stride deterministically; ``"random"`` draws it
  from the stride distribution below.
* ``P_stride1(s)`` — probability the stride is 1; with probability
  ``1 - P_stride1`` the stride is uniform over ``2 .. modulus`` (``M``
  banks for the MM-model, ``C`` lines for a CC-model).

The classic instantiations from the paper:

* blocked ``b x b`` matrix multiply: ``[b^2, b, 1/b, ...]``;
* blocked LU with blocking factor ``b^2``: reuse ``3b/2``;
* blocked FFT with blocking factor ``b``: reuse ``log2 b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["VCM", "StrideSpec"]

#: A stride specification: a fixed integer, or ``None`` for "undefined",
#: or the string ``"random"`` for the paper's mixed distribution.
StrideSpec = int | str | None


def _validate_probability(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")


def _validate_stride(name: str, s: StrideSpec) -> None:
    if s is None or s == "random":
        return
    if isinstance(s, int):
        return
    raise ValueError(f"{name} must be an int, 'random', or None; got {s!r}")


@dataclass(frozen=True)
class VCM:
    """The seven-tuple vector computational model.

    Attributes mirror the paper's tuple (see module docstring).  The two
    ``p_stride1`` fields give the unit-stride probability for each stream;
    they matter only when the corresponding stride is ``"random"``.

    Example — the blocked matrix-multiply instantiation:
        >>> model = VCM.blocked_matmul(b=32)
        >>> model.blocking_factor, model.reuse_factor, model.p_ds
        (1024, 32, 0.03125)
    """

    blocking_factor: int
    reuse_factor: float
    p_ds: float
    s1: StrideSpec = "random"
    s2: StrideSpec = "random"
    p_stride1_s1: float = 0.25
    p_stride1_s2: float = 0.25

    def __post_init__(self) -> None:
        if self.blocking_factor <= 0:
            raise ValueError("blocking factor B must be positive")
        if self.reuse_factor < 1:
            raise ValueError("reuse factor R must be at least 1")
        _validate_probability("p_ds", self.p_ds)
        _validate_probability("p_stride1_s1", self.p_stride1_s1)
        _validate_probability("p_stride1_s2", self.p_stride1_s2)
        _validate_stride("s1", self.s1)
        _validate_stride("s2", self.s2)
        if self.p_ds > 0 and self.s2 is None:
            raise ValueError("double-stream accesses need a second stride")

    # -- paper shorthand ----------------------------------------------------

    @property
    def B(self) -> int:  # noqa: N802 - paper symbol
        """Paper symbol for :attr:`blocking_factor`."""
        return self.blocking_factor

    @property
    def R(self) -> float:  # noqa: N802 - paper symbol
        """Paper symbol for :attr:`reuse_factor`."""
        return self.reuse_factor

    @property
    def p_ss(self) -> float:
        """Single-stream probability ``1 - P_ds``."""
        return 1.0 - self.p_ds

    @property
    def second_stream_length(self) -> float:
        """The model's derived length of the second vector, ``B * P_ds``."""
        return self.blocking_factor * self.p_ds

    # -- canonical instantiations (Section 3.1) ------------------------------

    @classmethod
    def blocked_matmul(cls, b: int, **overrides) -> "VCM":
        """Blocked ``b x b`` matrix multiply: ``B = b^2``, ``R = b``,
        ``P_ds = 1/b`` (every b-th access loads both streams)."""
        if b < 1:
            raise ValueError("submatrix dimension b must be positive")
        params = dict(
            blocking_factor=b * b, reuse_factor=b, p_ds=1.0 / b if b > 1 else 1.0
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def blocked_lu(cls, b: int, **overrides) -> "VCM":
        """Blocked LU decomposition: ``B = b^2``, average reuse ``3b/2``."""
        if b < 1:
            raise ValueError("submatrix dimension b must be positive")
        params = dict(
            blocking_factor=b * b,
            reuse_factor=max(1.0, 3.0 * b / 2.0),
            p_ds=1.0 / b if b > 1 else 1.0,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def blocked_fft(cls, b: int, **overrides) -> "VCM":
        """Blocked FFT: blocking factor ``b``, reuse ``log2 b``.

        Strides inside an FFT block are powers of two; the model treats
        them as random non-unit strides unless a specific stride is given.
        """
        if b < 2 or b & (b - 1):
            raise ValueError("FFT block size must be a power of two >= 2")
        params = dict(
            blocking_factor=b,
            reuse_factor=max(1.0, math.log2(b)),
            p_ds=0.0,
            s2=None,
            p_stride1_s1=0.0,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def row_column(cls, b: int, reuse: float, p_ds: float = 0.5, **overrides) -> "VCM":
        """Row/column access to a random-size matrix (Figure 11a):
        one stream at unit stride (columns), the other random (rows)."""
        params = dict(
            blocking_factor=b,
            reuse_factor=reuse,
            p_ds=p_ds,
            s1=1,
            s2="random",
            p_stride1_s1=1.0,
            p_stride1_s2=0.0,
        )
        params.update(overrides)
        return cls(**params)

    def describe(self) -> str:
        """The paper-style tuple rendering."""
        def s(x):
            return "-" if x is None else x

        return (
            f"VCM=[{self.blocking_factor}, {self.reuse_factor:g}, {self.p_ds:g}, "
            f"{s(self.s1)}, {s(self.s2)}, {self.p_stride1_s1:g}, "
            f"{self.p_stride1_s2:g}]"
        )
