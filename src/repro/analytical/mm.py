"""Analytical execution-time model of the cacheless MM-model machine.

Implements Section 3.2 equation by equation:

* Eq. (1): block time ``T_B = 10 + ceil(B/MVL) * (15 + T_start) +
  B * T_elemt^M``.
* ``I_s^M`` — expected self-interference stalls of one ``MVL``-element
  register load over the paper's stride distribution, both as the raw
  divisor-function sum and as the paper's closed form (they agree; tests
  check it).
* ``I_c^M`` — expected cross-interference stalls, from
  :mod:`repro.analytical.congruence`.
* Eq. (2): ``T_elemt^M = 1 + P_ss * I_s/MVL + P_ds * (2 I_s + I_c)/MVL``.
* Eq. (3): total time.  The paper prints ``T_B * R * ceil(N/R)``; the
  block count of an ``N``-element problem blocked by ``B`` is ``ceil(N/B)``
  (dimensional check: Eq. (4), the CC analogue, uses ``ceil(N/B)``), so we
  implement ``T_B * R * ceil(N/B)`` and record the discrepancy in
  EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from repro.analytical.base import MachineConfig, ceil_div
from repro.analytical.congruence import expected_cross_stalls
from repro.analytical.vcm import VCM

__all__ = ["MMModel", "self_stalls_for_stride"]


def self_stalls_for_stride(stride: int, config: MachineConfig) -> float:
    """Stall cycles one ``MVL``-element load with a *given* stride incurs.

    A stride-``s`` sweep cycles through ``k = M / gcd(M, s)`` banks; if the
    bank busy time exceeds the revisit distance (``t_m > k``), every sweep
    of ``k`` elements is delayed ``t_m - k`` cycles, and there are
    ``MVL / k`` sweeps.  In the degenerate ``k = 1`` case every element
    waits out the full busy time, ``MVL * (t_m - 1)`` in total.

    This is the paper's steady-state count: the first (cold-bank) sweep is
    charged like the rest, so the formula overstates a single isolated
    register load by at most one busy window — the trade that makes the
    closed form exact.  Tests compare it against the executable bank model
    within that tolerance.
    """
    m, t_m, mvl = config.num_banks, config.t_m, config.mvl
    if stride == 0:
        k = 1
    else:
        k = m // math.gcd(m, abs(stride))
    if k == 1:
        return mvl * (t_m - 1)
    if t_m <= k:
        return 0.0
    return (t_m - k) * (mvl / k)


class MMModel:
    """The memory-register vector machine of Figure 2 (no cache).

    Args:
        config: machine parameters (banks, ``t_m``, MVL, overheads).

    Example:
        >>> model = MMModel(MachineConfig(num_banks=32, memory_access_time=16))
        >>> vcm = VCM(blocking_factor=1024, reuse_factor=32, p_ds=0.25)
        >>> model.cycles_per_result(vcm) > 1.0
        True
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    # -- stall terms ---------------------------------------------------------

    def self_interference(self, p_stride1: float, stride: int | str | None) -> float:
        """Expected ``I_s^M`` for one stream's stride specification.

        A fixed integer stride uses the deterministic formula; the
        ``"random"`` spec mixes unit stride (probability ``p_stride1``,
        stall-free since ``t_m < M`` is assumed) with strides uniform over
        ``2 .. M``.
        """
        if stride is None:
            return 0.0
        if stride != "random":
            return self_stalls_for_stride(int(stride), self.config)
        return (1.0 - p_stride1) * self._random_stride_self_stalls()

    def _random_stride_self_stalls(self) -> float:
        """Average stalls over strides uniform on ``2 .. M``.

        The paper's closed form: ``MVL / (M - 1) *
        [t_m + (t_m / 2) * floor(log2 t_m) - 2^floor(log2 t_m)]``.
        """
        cfg = self.config
        t_m = cfg.t_m
        log_floor = int(math.floor(math.log2(t_m))) if t_m > 1 else 0
        bracket = t_m + (t_m / 2.0) * log_floor - float(2**log_floor)
        return cfg.mvl * bracket / (cfg.num_banks - 1)

    def self_interference_sum_form(self, p_stride1: float) -> float:
        """The pre-simplification divisor-function sum for ``I_s^M``.

        Kept alongside the closed form so tests can confirm the paper's
        "simple algebraic manipulation" (and so readers can see where each
        term comes from).
        """
        cfg = self.config
        m_exp, m, t_m, mvl = cfg.m_exponent, cfg.num_banks, cfg.t_m, cfg.mvl
        total = 0.0
        low = math.ceil(math.log2(m / t_m)) if t_m < m else 0
        for i in range(max(low, 0), m_exp):
            banks_visited = m // 2**i
            if t_m <= banks_visited:
                continue
            strides_with_gcd = 2 ** (m_exp - i - 1)
            sweeps = mvl / banks_visited
            total += (t_m - banks_visited) * strides_with_gcd * sweeps
        total += mvl * (t_m - 1)  # gcd(M, s) = M: the stride-M pathology
        return (1.0 - p_stride1) * total / (m - 1)

    def cross_interference(self) -> float:
        """Expected ``I_c^M`` over uniform bank offset ``D`` (closed form)."""
        cfg = self.config
        return expected_cross_stalls(cfg.num_banks, cfg.mvl, cfg.t_m)

    # -- the equations --------------------------------------------------------

    def element_time(self, vcm: VCM) -> float:
        """Eq. (2): average cycles to produce one element."""
        i_s1 = self.self_interference(vcm.p_stride1_s1, vcm.s1)
        i_s2 = self.self_interference(vcm.p_stride1_s2, vcm.s2)
        i_c = self.cross_interference() if vcm.p_ds > 0 else 0.0
        mvl = self.config.mvl
        return (
            1.0
            + vcm.p_ss * i_s1 / mvl
            + vcm.p_ds * (i_s1 + i_s2 + i_c) / mvl
        )

    def block_time(self, vcm: VCM, element_time: float | None = None) -> float:
        """Eq. (1): time for one sweep over a ``B``-element block."""
        cfg = self.config
        if element_time is None:
            element_time = self.element_time(vcm)
        strips = ceil_div(vcm.blocking_factor, cfg.mvl)
        return (
            cfg.loop_overhead
            + strips * (cfg.strip_overhead + cfg.t_start)
            + vcm.blocking_factor * element_time
        )

    def total_time(self, vcm: VCM, problem_size: int | None = None) -> float:
        """Eq. (3): full problem of ``N`` elements (default one block)."""
        n = problem_size if problem_size is not None else vcm.blocking_factor
        blocks = ceil_div(n, vcm.blocking_factor)
        return self.block_time(vcm) * vcm.reuse_factor * blocks

    def cycles_per_result(self, vcm: VCM, problem_size: int | None = None) -> float:
        """Total time divided by ``N * R`` — the paper's plotted measure."""
        n = problem_size if problem_size is not None else vcm.blocking_factor
        return self.total_time(vcm, n) / (n * vcm.reuse_factor)
