"""Effective memory bandwidth of interleaved banks (Oed & Lange, ref [18]).

The MM-model's stall terms have a bandwidth reading the paper uses in its
introduction: a stride-``s`` stream cycles through ``k = M / gcd(M, s)``
banks, so the banks can *sustain* at most ``k`` accesses per ``t_m``
cycles.  Relative to the one-element-per-cycle pipeline, the effective
bandwidth is

    ``B_eff(s) = min(1, k / t_m)``   elements per cycle,

and the expected value over the paper's stride distribution is what
decides whether interleaving alone feeds the processor.  These little
formulas let the bank-count discussion ("hundreds and even thousands of
modules" — Bailey) be carried out in closed form; the executable
counterpart lives in :mod:`repro.memory.banks` and the tests tie the two
together.
"""

from __future__ import annotations

import math

from repro.analytical.base import MachineConfig

__all__ = [
    "effective_bandwidth_for_stride",
    "expected_effective_bandwidth",
    "banks_needed_for_full_bandwidth",
]


def effective_bandwidth_for_stride(stride: int, config: MachineConfig) -> float:
    """Sustained elements/cycle of a single stride-``stride`` stream."""
    if stride == 0:
        k = 1
    else:
        k = config.num_banks // math.gcd(config.num_banks, abs(stride))
    return min(1.0, k / config.t_m)


def expected_effective_bandwidth(
    config: MachineConfig, p_stride1: float = 0.25
) -> float:
    """Expected bandwidth over the paper's stride distribution.

    Unit stride with probability ``p_stride1``; otherwise uniform on
    ``2 .. M``.
    """
    if not 0.0 <= p_stride1 <= 1.0:
        raise ValueError("p_stride1 must be a probability")
    m = config.num_banks
    nonunit = sum(
        effective_bandwidth_for_stride(s, config) for s in range(2, m + 1)
    ) / (m - 1)
    return p_stride1 * effective_bandwidth_for_stride(1, config) \
        + (1 - p_stride1) * nonunit


def banks_needed_for_full_bandwidth(
    t_m: int,
    *,
    streams: int = 1,
    worst_power_stride: int = 1,
) -> int:
    """Smallest power-of-two bank count sustaining full pipeline rate.

    Args:
        t_m: bank busy time.
        streams: simultaneous vector streams (each issuing one element
            per cycle — the dual-stream case doubles the demand).
        worst_power_stride: the largest power-of-two stride that must run
            at full rate; a stride of ``2^a`` wastes a factor ``2^a`` of
            the banks (``gcd`` folding), which is Bailey's engine for the
            "hundreds and even thousands" quote.
    """
    if t_m <= 0 or streams <= 0 or worst_power_stride <= 0:
        raise ValueError("t_m, streams and worst_power_stride must be positive")
    if worst_power_stride & (worst_power_stride - 1):
        raise ValueError("worst_power_stride must be a power of two")
    needed = streams * t_m * worst_power_stride
    banks = 1
    while banks < needed:
        banks *= 2
    return banks
