"""Shared configuration for the analytical machine models.

Section 3 of the paper parameterises both machines identically except for
the cache: ``MVL``-word vector registers, ``M = 2^m`` interleaved banks of
access time ``t_m`` cycles, and the Hennessy–Patterson loop-overhead
constants (10 cycles per blocked loop, 15 cycles per strip-mined inner
loop, ``T_start = 30 + t_m``).  Every equation in :mod:`repro.analytical`
pulls those numbers from a single :class:`MachineConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MachineConfig", "ceil_div"]


def ceil_div(a: int, b: int) -> int:
    """``ceil(a / b)`` for positive integers."""
    if b <= 0:
        raise ValueError("denominator must be positive")
    return -(-a // b)


@dataclass(frozen=True)
class MachineConfig:
    """Parameters common to the MM- and CC-model machines.

    Attributes:
        num_banks: interleaved bank count ``M`` (power of two for the
            paper's low-order interleave).
        memory_access_time: bank busy time ``t_m`` in processor cycles.
        mvl: maximum vector register length (paper: 64).
        loop_overhead: cycles of setup per blocked-loop iteration
            (paper/H&P: 10).
        strip_overhead: cycles of strip-mining overhead per inner loop
            (paper/H&P: 15).
        start_base: ``T_start = start_base + t_m`` (paper/H&P: 30).
        cache_lines: ``C``, capacity of the vector cache in lines —
            meaningful for CC-models only, but carried here so one config
            describes one plotted machine.
    """

    num_banks: int = 32
    memory_access_time: int = 16
    mvl: int = 64
    loop_overhead: int = 10
    strip_overhead: int = 15
    start_base: int = 30
    cache_lines: int = 8192

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a positive power of two")
        if self.memory_access_time <= 0:
            raise ValueError("memory_access_time must be positive")
        if self.mvl <= 0:
            raise ValueError("mvl must be positive")
        if self.cache_lines <= 0:
            raise ValueError("cache_lines must be positive")

    @property
    def t_m(self) -> int:
        """Alias for :attr:`memory_access_time`, matching the paper's symbol."""
        return self.memory_access_time

    @property
    def t_start(self) -> int:
        """Inner-loop start-up time ``T_start = 30 + t_m``."""
        return self.start_base + self.memory_access_time

    @property
    def m_exponent(self) -> int:
        """``m`` with ``M = 2^m``."""
        return int(math.log2(self.num_banks))

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        from dataclasses import replace

        return replace(self, **changes)
