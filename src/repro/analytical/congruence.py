"""Cross-interference of two vector streams in interleaved memory.

Section 3.2: with stream strides ``s1, s2`` and bank offset ``D`` between
the streams' starting addresses, elements ``i`` of stream 1 and ``j`` of
stream 2 hit the same bank when

    ``s1 * i  ===  s2 * j + D   (mod M)``.

Each solution pair with ``|i - j| < t_m`` collides inside the bank's busy
window and stalls the machine ``t_m - |i - j|`` cycles.  The paper states
"We have written a program of solving the congruence equation" — this
module is that program, plus the closed form its averaging collapses to.

The collapse is worth noting: for *uniform* ``D`` over ``1 .. M`` every
pair ``(i, j)`` matches exactly one value of ``D`` (namely
``D === s1*i - s2*j``), so the expected stall total is

    ``E[I_c^M] = (1/M) * sum_{|i-j| < t_m} (t_m - |i - j|)``

independent of the strides.  :func:`expected_cross_stalls` implements the
closed form; :func:`cross_stalls` the per-``(s1, s2, D)`` exact count that
the tests average to confirm the collapse.

The ``congruence`` oracle of :mod:`repro.verify` sweeps everything here
against brute-force enumeration (and its mutation self-check proves a
solver that loses the multi-solution family is caught).
"""

from __future__ import annotations

import math

__all__ = [
    "solve_linear_congruence",
    "cross_stalls",
    "average_cross_stalls",
    "expected_cross_stalls",
]


def solve_linear_congruence(a: int, b: int, m: int) -> list[int]:
    """All solutions ``x`` in ``0 .. m-1`` of ``a*x === b (mod m)``.

    Standard number theory: solvable iff ``g = gcd(a, m)`` divides ``b``,
    in which case there are exactly ``g`` solutions, spaced ``m/g`` apart.
    """
    if m <= 0:
        raise ValueError("modulus must be positive")
    a %= m
    b %= m
    g = math.gcd(a, m)
    if b % g:
        return []
    m_red = m // g
    a_red = (a // g) % m_red
    b_red = (b // g) % m_red
    # a_red is invertible mod m_red
    x0 = (b_red * pow(a_red, -1, m_red)) % m_red if m_red > 1 else 0
    return [x0 + k * m_red for k in range(g)]


def cross_stalls(s1: int, s2: int, d: int, num_banks: int, mvl: int, t_m: int) -> int:
    """Exact stall cycles between two ``mvl``-element streams.

    Accumulates ``t_m - |i - j|`` over every solution pair of
    ``s1*i === s2*j + d (mod M)`` with ``i, j`` in ``0 .. mvl-1`` and
    ``|i - j| < t_m``, exactly as the paper prescribes.
    """
    if mvl <= 0 or t_m <= 0:
        raise ValueError("mvl and t_m must be positive")
    total = 0
    for i in range(mvl):
        # j solves s2*j === s1*i - d (mod M)
        for j0 in solve_linear_congruence(s2, s1 * i - d, num_banks):
            for j in range(j0, mvl, num_banks):
                if abs(i - j) < t_m:
                    total += t_m - abs(i - j)
    return total


def average_cross_stalls(
    s1: int, s2: int, num_banks: int, mvl: int, t_m: int
) -> float:
    """Cross stalls averaged over the bank offset ``D`` uniform on ``1..M``."""
    total = sum(
        cross_stalls(s1, s2, d, num_banks, mvl, t_m) for d in range(1, num_banks + 1)
    )
    return total / num_banks


def expected_cross_stalls(num_banks: int, mvl: int, t_m: int) -> float:
    """Closed form of ``E[I_c^M]`` over uniform ``D`` (stride-independent).

    ``(1/M) * [t_m * MVL + sum_{d=1}^{t_m - 1} 2 * (MVL - d) * (t_m - d)]``
    — the ``d = 0`` diagonal contributes ``t_m`` for each of the ``MVL``
    pairs, and each off-diagonal distance ``d`` has ``2 * (MVL - d)``
    pairs contributing ``t_m - d``.
    """
    if mvl <= 0 or t_m <= 0:
        raise ValueError("mvl and t_m must be positive")
    total = t_m * mvl
    for d in range(1, min(t_m, mvl)):
        total += 2 * (mvl - d) * (t_m - d)
    return total / num_banks
