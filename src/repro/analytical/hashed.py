"""Birthday-paradox collision model for hashed (randomised) cache
indexing.

With a uniform random index function, placing ``B`` distinct lines into
``S`` sets is the birthday problem: the probability that a given line
shares its set with at least one of the other ``B - 1`` lines is
``1 - (1 - 1/S)**(B - 1)``, so the expected number of *colliding* lines
is

    ``E[collisions] = B * (1 - (1 - 1/S)**(B - 1))``       (direct-mapped)

nonzero even for ``B <= S`` — randomisation trades the pathological
strides of power-of-two indexing for an irreducible statistical floor
the prime mapping does not pay.

The model connects to the simulator through a sweep law.  Sweep ``B``
distinct lines twice, in the same order, through a direct-mapped
:class:`repro.cache.hashed.HashedIndexCache`: on the second sweep, line
``i`` hits iff *no other line* maps to its set (with one way, any
same-set line accessed between ``i``'s two references evicts it, and
every other line is referenced exactly once in that window).  Hence

    second-sweep misses  ==  B - (number of singleton sets)

*exactly*, per seed, for the concrete hash — and its expectation over
seeds is the closed form above (the splitmix64 finalizer is close
enough to uniform that the ``cache-zoo`` oracle holds the seed-mean to
it within tight statistical tolerances).
"""

from __future__ import annotations

import numpy as np

from repro.cache.hashed import hash_sets

__all__ = [
    "expected_colliding_lines",
    "expected_distinct_sets",
    "exact_colliding_lines",
    "mean_colliding_lines",
    "second_sweep_misses",
]


def expected_colliding_lines(num_lines, num_sets):
    """Closed form: expected lines sharing a set with another line.

    ``B * (1 - (1 - 1/S)**(B - 1))`` under a uniform random index;
    equals the expected second-sweep miss count of the double-sweep law
    on a direct-mapped hashed cache.  Broadcasts over array arguments.

    Example:
        >>> round(float(expected_colliding_lines(1, 64)), 10)
        0.0
        >>> 0.0 < float(expected_colliding_lines(32, 64)) < 32.0
        True
    """
    b = np.asarray(num_lines, dtype=np.float64)
    s = np.asarray(num_sets, dtype=np.float64)
    # S == 1 makes log1p(-1/S) == -inf; guard the B == 1 corner where
    # the exponent 0 * -inf would otherwise produce nan (a lone line
    # never collides, whatever the set count)
    with np.errstate(divide="ignore", invalid="ignore"):
        collide = b * -np.expm1((b - 1.0) * np.log1p(-1.0 / s))
    return np.where(b <= 1.0, 0.0, collide)[()]


def expected_distinct_sets(num_lines, num_sets):
    """Closed form: expected number of sets occupied by ``B`` random lines,
    ``S * (1 - (1 - 1/S)**B)``.  Broadcasts over array arguments."""
    b = np.asarray(num_lines, dtype=np.float64)
    s = np.asarray(num_sets, dtype=np.float64)
    # S == 1: log1p(-1) == -inf is benign here (B >= 1 occupies the
    # single set with probability 1), so only the warning needs muting
    with np.errstate(divide="ignore"):
        return s * -np.expm1(b * np.log1p(-1.0 / s))


def exact_colliding_lines(num_lines: int, num_sets: int, seed: int,
                          base_line: int = 0) -> int:
    """Colliding-line count of the *actual* splitmix64 placement.

    Hashes lines ``base_line .. base_line + num_lines - 1`` with the
    given seed and counts the lines whose set is not a singleton —
    exactly the second-sweep miss count of the double-sweep law.
    """
    lines = np.arange(base_line, base_line + num_lines, dtype=np.int64)
    sets = hash_sets(lines, seed, num_sets)
    _, counts = np.unique(sets, return_counts=True)
    singletons = int(np.count_nonzero(counts == 1))
    return num_lines - singletons


def mean_colliding_lines(num_lines: int, num_sets: int,
                         num_seeds: int, base_seed: int = 0) -> float:
    """Mean :func:`exact_colliding_lines` over ``num_seeds`` consecutive
    seeds, vectorised (seeds x lines hashed in one shot)."""
    if num_seeds <= 0:
        raise ValueError("num_seeds must be positive")
    lines = np.arange(num_lines, dtype=np.uint64)
    seeds = np.arange(base_seed, base_seed + num_seeds, dtype=np.uint64)
    z = lines[None, :] ^ seeds[:, None]
    z += np.uint64(0x9E3779B97F4A7C15)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    sets = (z % np.uint64(num_sets)).astype(np.int64)
    sets.sort(axis=1)
    # a line collides unless its set differs from both neighbours in the
    # per-seed sorted row
    same_next = sets[:, 1:] == sets[:, :-1]
    collide = np.zeros_like(sets, dtype=bool)
    collide[:, 1:] |= same_next
    collide[:, :-1] |= same_next
    return float(collide.sum(axis=1).mean())


def second_sweep_misses(num_lines: int, num_sets: int, seed: int,
                        *, base_line: int = 0) -> int:
    """Simulate the double-sweep law on a real direct-mapped hashed cache;
    returns the second sweep's miss count (== the exact collision count,
    which the ``cache-zoo`` oracle asserts)."""
    from repro.cache.hashed import HashedIndexCache

    cache = HashedIndexCache(num_sets=num_sets, num_ways=1, seed=seed,
                             classify_misses=False)
    lines = np.arange(base_line, base_line + num_lines, dtype=np.int64)
    cache.access_many(lines)
    return int(cache.access_many(lines).delta.misses)
