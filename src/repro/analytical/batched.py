"""Vectorised evaluation of the analytical stack over parameter grids.

Every closed form in :mod:`repro.analytical` — the congruence
cross-stall solver of Section 3.2, the MM-model Eqs. (1)–(3), the
direct/prime/set-associative CC-model Eqs. (4)–(8), the stride
footprints, the Oed–Lange bandwidth forms and the blocking/crossover
searches of :mod:`repro.analytical.optimize` — is re-derived here as
numpy array arithmetic, so one call scores a whole grid of
``(mapping, C, ways, banks, t_m) x (B, R, P_ds, P_stride1)`` design
points instead of a Python loop of scalar model calls.

The functions mirror the scalar expressions term by term (same
operation order wherever the result could depend on float rounding), so
the ``analytical-batched`` oracle in :mod:`repro.verify` can hold the
two paths to a tight tolerance.  Two scalar-only loops needed a real
re-derivation:

* the O(C) random-stride sums of the set-associative model collapse to
  a sum over gcd *classes* ``gcd(S, s) = 2^k`` (at most ``log2 S + 1``
  terms, each with a closed-form stride count), exact because every
  per-stride summand is an integer;
* the triple loop of :func:`repro.analytical.congruence.cross_stalls`
  collapses per diagonal ``delta = i - j``: the pairs on one diagonal
  solve ``(s1 - s2) * i === d - s2*delta (mod M)``, a single residue
  class mod ``M/gcd`` whose members in the valid ``i`` range are
  counted with floor arithmetic (the modular inverse comes from a
  vectorised extended Euclid, since ``pow(a, -1, m)`` cannot
  broadcast).

Stride specifications are per *call*, not per element: ``s1``/``s2``
are either the string ``"random"``, ``None``, or an integer array —
grids mixing random- and fixed-stride points are evaluated in one call
per group (see :mod:`repro.analytical.surrogate`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "solution_count_batch",
    "modinv_batch",
    "cross_stalls_batch",
    "expected_cross_stalls_batch",
    "mm_self_stalls_for_stride_batch",
    "mm_random_self_stalls_batch",
    "mm_self_interference_batch",
    "mm_element_time_batch",
    "block_time_batch",
    "mm_cycles_per_result_batch",
    "cc_self_stalls_for_stride_batch",
    "cc_self_interference_batch",
    "cc_expected_footprint_batch",
    "cc_cross_interference_batch",
    "cc_element_time_batch",
    "cached_block_time_batch",
    "cc_outputs_batch",
    "cached_sweep_misses_batch",
    "workload_miss_ratio_batch",
    "effective_bandwidth_for_stride_batch",
    "expected_effective_bandwidth_batch",
    "optimal_blocking_factor_batch",
    "crossover_memory_time_batch",
    "MAPPINGS",
]

#: Cache organisations the batched CC forms understand.
MAPPINGS = ("direct", "prime", "assoc")


def _i64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


def _f64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def _floor_log2(values) -> np.ndarray:
    """``floor(log2(v))`` for ``v > 1``, else 0 — exact via ``frexp``.

    ``frexp`` writes ``v = mantissa * 2**exp`` with mantissa in
    ``[0.5, 1)``, so ``exp - 1`` is exactly ``floor(log2 v)`` for every
    positive float (no log-rounding edge at exact powers of two).
    """
    v = _f64(values)
    _, exp = np.frexp(v)
    return np.where(v > 1.0, exp.astype(np.int64) - 1, 0)


def _exact_log2(values) -> np.ndarray:
    """``log2`` of power-of-two int arrays (validated)."""
    v = _i64(values)
    if np.any(v <= 0) or np.any(v & (v - 1)):
        raise ValueError("expected positive powers of two")
    return _floor_log2(v)


def _ceil_div(a, b):
    a, b = _i64(a), _i64(b)
    return -(-a // b)


# ---------------------------------------------------------------------------
# congruence: solution counting and cross-stalls over grids
# ---------------------------------------------------------------------------


def solution_count_batch(a, b, m) -> np.ndarray:
    """How many ``x`` in ``0 .. m-1`` solve ``a*x === b (mod m)``.

    The vectorised counterpart of
    ``len(solve_linear_congruence(a, b, m))``: ``gcd(a, m)`` when it
    divides ``b``, else zero.
    """
    a, b, m = np.broadcast_arrays(_i64(a), _i64(b), _i64(m))
    if np.any(m <= 0):
        raise ValueError("modulus must be positive")
    g = np.gcd(a % m, m)
    return np.where(b % g == 0, g, 0)


def modinv_batch(a, m) -> np.ndarray:
    """Modular inverse of ``a`` mod ``m`` (``gcd(a, m) == 1``), batched.

    Iterative extended Euclid — ``pow(a, -1, m)`` cannot broadcast.
    ``m == 1`` maps to 0, matching the scalar solver's convention.
    """
    a, m = np.broadcast_arrays(_i64(a), _i64(m))
    if np.any(m <= 0):
        raise ValueError("modulus must be positive")
    old_r = a % m
    r = m.copy()
    old_s = np.ones_like(old_r)
    s = np.zeros_like(old_r)
    while np.any(r != 0):
        active = r != 0
        safe_r = np.where(active, r, 1)
        q = np.where(active, old_r // safe_r, 0)
        old_r, r = np.where(active, r, old_r), np.where(active, old_r - q * r, r)
        old_s, s = np.where(active, s, old_s), np.where(active, old_s - q * s, s)
    return np.where(m == 1, 0, old_s % m)


def cross_stalls_batch(s1, s2, d, num_banks, mvl, t_m) -> np.ndarray:
    """Exact stall cycles between two streams, over broadcast grids.

    Same count as :func:`repro.analytical.congruence.cross_stalls`,
    reorganised per diagonal: a solution pair ``(i, j)`` with
    ``delta = i - j`` satisfies ``(s1 - s2)*i === d - s2*delta (mod M)``
    and contributes ``t_m - |delta|``; the solutions form one residue
    class mod ``M/g`` counted by floor arithmetic over the valid ``i``
    range.  Cost O(max t_m) per grid point instead of the scalar's
    O(MVL * t_m / M * ...) enumeration.
    """
    s1, s2, d, num_banks, mvl, t_m = np.broadcast_arrays(
        _i64(s1), _i64(s2), _i64(d), _i64(num_banks), _i64(mvl), _i64(t_m))
    if np.any(mvl <= 0) or np.any(t_m <= 0):
        raise ValueError("mvl and t_m must be positive")
    if np.any(num_banks <= 0):
        raise ValueError("num_banks must be positive")
    m = num_banks
    a = (s1 - s2) % m
    g = np.gcd(a, m)
    m_red = m // g
    inv = modinv_batch((a // g) % np.maximum(m_red, 1), m_red)

    max_t = int(t_m.max())
    # diagonals delta = i - j in (-t_m, t_m), one trailing axis
    delta = np.arange(-(max_t - 1), max_t, dtype=np.int64)
    dl = delta.reshape((1,) * m.ndim + (-1,))
    mx = m[..., None]
    gx = g[..., None]
    weight = t_m[..., None] - np.abs(dl)
    # b-side of the per-diagonal congruence; solvable iff g | b
    b = (d[..., None] - s2[..., None] * dl) % mx
    solvable = b % gx == 0
    # principal solution of the reduced congruence, lifted: i === x0 (mod M/g)
    m_red_x = np.maximum(m_red[..., None], 1)
    x0 = ((b // gx) % m_red_x) * inv[..., None] % m_red_x
    # valid i range so that both i and j = i - delta lie in [0, mvl)
    lo = np.maximum(0, dl)
    hi = np.minimum(mvl[..., None] - 1, mvl[..., None] - 1 + dl)
    count = (hi - x0) // m_red_x - (lo - 1 - x0) // m_red_x
    count = np.where(solvable & (weight > 0) & (hi >= lo), count, 0)
    return np.sum(weight * count, axis=-1)


def expected_cross_stalls_batch(num_banks, mvl, t_m) -> np.ndarray:
    """Closed form of ``E[I_c^M]`` over uniform ``D``, batched.

    The scalar loop ``sum_{d=1}^{L} 2(MVL-d)(t_m-d)`` with
    ``L = min(t_m, MVL) - 1`` collapses via the power sums
    ``S1 = L(L+1)/2`` and ``S2 = L(L+1)(2L+1)/6``.
    """
    num_banks, mvl, t_m = np.broadcast_arrays(
        _i64(num_banks), _i64(mvl), _i64(t_m))
    if np.any(mvl <= 0) or np.any(t_m <= 0):
        raise ValueError("mvl and t_m must be positive")
    big_l = np.minimum(t_m, mvl) - 1
    s1 = big_l * (big_l + 1) // 2
    s2 = big_l * (big_l + 1) * (2 * big_l + 1) // 6
    total = t_m * mvl + 2 * (mvl * t_m * big_l - (mvl + t_m) * s1 + s2)
    return total / num_banks


# ---------------------------------------------------------------------------
# MM-model (Eqs. 1-3)
# ---------------------------------------------------------------------------


def mm_self_stalls_for_stride_batch(stride, num_banks, t_m, mvl) -> np.ndarray:
    """Vectorised :func:`repro.analytical.mm.self_stalls_for_stride`."""
    stride, num_banks, t_m, mvl = np.broadcast_arrays(
        _i64(stride), _i64(num_banks), _i64(t_m), _i64(mvl))
    k = np.where(stride == 0, 1,
                 num_banks // np.gcd(num_banks, np.abs(stride)))
    return np.where(
        k == 1, mvl * (t_m - 1.0),
        np.where(t_m <= k, 0.0, (t_m - k) * (mvl / k)))


def mm_random_self_stalls_batch(num_banks, t_m, mvl) -> np.ndarray:
    """The MM closed form for strides uniform on ``2 .. M``, batched."""
    num_banks, t_m, mvl = np.broadcast_arrays(
        _i64(num_banks), _i64(t_m), _i64(mvl))
    log_floor = _floor_log2(t_m)
    bracket = t_m + (t_m / 2.0) * log_floor - np.ldexp(1.0, log_floor)
    return mvl * bracket / (num_banks - 1)


def mm_self_interference_batch(p_stride1, stride, num_banks, t_m,
                               mvl) -> np.ndarray:
    """Expected ``I_s^M`` for one stream's stride spec, batched.

    ``stride`` is ``None`` (no stream), ``"random"``, or an int array.
    """
    if stride is None:
        shape = np.broadcast_shapes(np.shape(p_stride1), np.shape(num_banks),
                                    np.shape(t_m), np.shape(mvl))
        return np.zeros(shape)
    if isinstance(stride, str):
        if stride != "random":
            raise ValueError(f"unknown stride spec {stride!r}")
        return ((1.0 - _f64(p_stride1))
                * mm_random_self_stalls_batch(num_banks, t_m, mvl))
    return mm_self_stalls_for_stride_batch(stride, num_banks, t_m, mvl)


def mm_element_time_batch(*, num_banks, t_m, mvl, p_ds, p_stride1_s1,
                          p_stride1_s2, s1="random",
                          s2="random") -> np.ndarray:
    """Eq. (2) over grids: average cycles to produce one element."""
    p_ds = _f64(p_ds)
    i_s1 = mm_self_interference_batch(p_stride1_s1, s1, num_banks, t_m, mvl)
    i_s2 = mm_self_interference_batch(p_stride1_s2, s2, num_banks, t_m, mvl)
    i_c = np.where(p_ds > 0,
                   expected_cross_stalls_batch(num_banks, mvl, t_m), 0.0)
    mvl = _f64(mvl)
    return 1.0 + (1.0 - p_ds) * i_s1 / mvl + p_ds * (i_s1 + i_s2 + i_c) / mvl


def block_time_batch(blocking_factor, element_time, *, t_m, mvl,
                     loop_overhead=10, strip_overhead=15,
                     start_base=30) -> np.ndarray:
    """Eq. (1) over grids: one sweep over a ``B``-element block."""
    b = _i64(blocking_factor)
    strips = _ceil_div(b, mvl)
    t_start = _i64(start_base) + _i64(t_m)
    return (loop_overhead + strips * (strip_overhead + t_start)
            + b * _f64(element_time))


def mm_cycles_per_result_batch(*, num_banks, t_m, mvl, blocking_factor,
                               reuse_factor, p_ds, p_stride1_s1,
                               p_stride1_s2, s1="random", s2="random",
                               problem_size=None, loop_overhead=10,
                               strip_overhead=15, start_base=30) -> np.ndarray:
    """Eq. (3) normalised per result, batched (default ``N = B``)."""
    element = mm_element_time_batch(
        num_banks=num_banks, t_m=t_m, mvl=mvl, p_ds=p_ds,
        p_stride1_s1=p_stride1_s1, p_stride1_s2=p_stride1_s2, s1=s1, s2=s2)
    block_time = block_time_batch(
        blocking_factor, element, t_m=t_m, mvl=mvl,
        loop_overhead=loop_overhead, strip_overhead=strip_overhead,
        start_base=start_base)
    b = _i64(blocking_factor)
    n = b if problem_size is None else _i64(problem_size)
    blocks = _ceil_div(n, b)
    r = _f64(reuse_factor)
    return block_time * r * blocks / (n * r)


# ---------------------------------------------------------------------------
# CC-model self-interference and footprints (Eqs. 5-8 + set-associative)
# ---------------------------------------------------------------------------


def _direct_random_self(block, p_stride1, cache_lines, t_m) -> np.ndarray:
    """Eq. (6) closed form for strides uniform on ``2 .. C``."""
    b = _f64(block)
    log_floor = _floor_log2(b)
    pow_floor = np.ldexp(1.0, log_floor)
    bracket = (3.0 * b * pow_floor - 2.0 * pow_floor * pow_floor - 1.0) / 3.0
    c_lines = _f64(cache_lines)
    return np.where(
        b < 1, 0.0,
        (1.0 - _f64(p_stride1)) / (c_lines - 1) * bracket * _f64(t_m))


def _prime_random_self(block, p_stride1, cache_lines, t_m) -> np.ndarray:
    """Eq. (8): only stride multiples of the prime ``C`` self-interfere."""
    b = _f64(block)
    c_lines = _f64(cache_lines)
    return np.where(
        b < 1, 0.0,
        (1.0 - _f64(p_stride1)) * (b - 1) / (c_lines - 1) * _f64(t_m))


def _assoc_class_axes(cache_lines, ways):
    """The gcd-class axis for set-associative random-stride sums.

    Strides ``2 .. C`` are classified by ``gcd(S, s) = 2^k`` with
    ``S = C / ways`` sets.  Returns ``(k, count, occupied, valid)``
    broadcast against the inputs, with a trailing class axis: ``count``
    is how many strides fall in class ``k`` and ``occupied`` how many
    sets such a stride visits.
    """
    c_lines = _i64(cache_lines)
    ways = _i64(ways)
    if np.any(ways < 1):
        raise ValueError("ways must be at least 1")
    if np.any(c_lines % ways):
        raise ValueError("ways must divide the cache capacity")
    sets = c_lines // ways
    se = _exact_log2(sets)
    k = np.arange(int(se.max()) + 1, dtype=np.int64)
    k = k.reshape((1,) * se.ndim + (-1,))
    se_x = se[..., None]
    c_x = c_lines[..., None]
    valid = k <= se_x
    pow_k = np.where(valid, np.int64(1) << k, 1)
    per_k = c_x // pow_k          # multiples of 2^k up to C (k <= se)
    per_k1 = per_k // 2           # multiples of 2^(k+1) up to C
    count = np.where(
        k < se_x, per_k - per_k1 - np.where(k == 0, 1, 0),
        np.where(k == se_x,
                 np.where(se_x == 0, c_x - 1, per_k), 0))
    occupied = np.where(valid, (sets[..., None]) // pow_k, 1)
    return k, count, occupied, valid


def _assoc_stalls_per_class(block, occupied, ways) -> np.ndarray:
    """Cyclic-LRU miss count (in line fills) for one gcd class."""
    block = _i64(block)
    full = block // occupied
    extra = block - full * occupied
    misses = (np.where(full + 1 > ways, extra * (full + 1), 0)
              + np.where(full > ways, (occupied - extra) * full, 0))
    return misses


def _assoc_random_self(block, p_stride1, cache_lines, ways, t_m) -> np.ndarray:
    """Set-associative random-stride stalls via gcd-class grouping.

    Exactly the scalar O(C) loop's value: every per-stride summand is an
    integer, so grouping strides by class and multiplying by the class
    count loses nothing.
    """
    block_i = _i64(np.floor(_f64(block)))
    _, count, occupied, valid = _assoc_class_axes(cache_lines, ways)
    misses = _assoc_stalls_per_class(block_i[..., None],
                                     occupied, _i64(ways)[..., None])
    total = np.sum(np.where(valid, count * misses, 0), axis=-1) * _i64(t_m)
    c_lines = _f64(cache_lines)
    result = (1.0 - _f64(p_stride1)) * total / (c_lines - 1)
    return np.where(_f64(block) < 1, 0.0, result)


def cc_self_stalls_for_stride_batch(mapping, block, stride, *, cache_lines,
                                    ways=1, t_m=16) -> np.ndarray:
    """Fixed-stride cached-sweep stalls for one mapping, batched."""
    stride = _i64(stride)
    c_lines = _i64(cache_lines)
    t_m = _f64(t_m)
    if mapping == "direct":
        b = _f64(block)
        footprint = np.where(stride == 0, 1,
                             c_lines // np.gcd(c_lines, np.abs(stride)))
        return np.maximum(0.0, b - footprint) * t_m
    if mapping == "prime":
        b = _f64(block)
        footprint = np.where(stride == 0, 1,
                             c_lines // np.gcd(c_lines,
                                               np.maximum(np.abs(stride), 1)))
        whole = (stride == 0) | (stride % c_lines == 0)
        misses = np.where(whole, np.maximum(0.0, b - 1),
                          np.maximum(0.0, b - footprint))
        return misses * t_m
    if mapping == "assoc":
        ways = _i64(ways)
        sets = c_lines // ways
        g = np.gcd(sets, np.abs(stride))
        occupied = np.where(stride == 0, 1, sets // np.maximum(g, 1))
        misses = _assoc_stalls_per_class(_i64(np.floor(_f64(block))),
                                         occupied, ways)
        return misses * t_m
    raise ValueError(f"mapping must be one of {MAPPINGS}, got {mapping!r}")


def cc_self_interference_batch(mapping, block, p_stride1, stride, *,
                               cache_lines, ways=1, t_m=16) -> np.ndarray:
    """Expected ``I_s^C`` for one stream's stride spec, batched."""
    if stride is None:
        shape = np.broadcast_shapes(np.shape(block), np.shape(p_stride1),
                                    np.shape(cache_lines), np.shape(t_m))
        return np.zeros(shape)
    if isinstance(stride, str):
        if stride != "random":
            raise ValueError(f"unknown stride spec {stride!r}")
        if mapping == "direct":
            return _direct_random_self(block, p_stride1, cache_lines, t_m)
        if mapping == "prime":
            return _prime_random_self(block, p_stride1, cache_lines, t_m)
        if mapping == "assoc":
            return _assoc_random_self(block, p_stride1, cache_lines, ways,
                                      t_m)
        raise ValueError(f"mapping must be one of {MAPPINGS}, got {mapping!r}")
    fixed = cc_self_stalls_for_stride_batch(
        mapping, block, stride, cache_lines=cache_lines, ways=ways, t_m=t_m)
    return np.where(_f64(block) < 1, 0.0, fixed)


def cc_expected_footprint_batch(mapping, block, p_stride1, *, cache_lines,
                                ways=1) -> np.ndarray:
    """Expected distinct resident lines of a strided vector, batched."""
    b = _f64(block)
    c_lines = _i64(cache_lines)
    c_f = _f64(cache_lines)
    unit = np.minimum(b, c_f)
    p1 = _f64(p_stride1)
    if mapping == "direct":
        c_exp = _exact_log2(c_lines)
        k = np.arange(int(c_exp.max()) + 1, dtype=np.int64)
        k = k.reshape((1,) * c_exp.ndim + (-1,))
        c_x = c_lines[..., None]
        valid = k <= c_exp[..., None]
        count = np.where(
            k == 0, c_x // 2 - 1,
            np.where(k < c_exp[..., None],
                     c_x // np.where(valid, np.int64(1) << (k + 1), 1),
                     np.where(k == c_exp[..., None], 1, 0)))
        class_fp = np.minimum(b[..., None],
                              c_x / np.where(valid, np.int64(1) << k, 1))
        acc = np.sum(np.where(valid, count * class_fp, 0.0), axis=-1)
        nonunit = acc / (c_f - 1)
        return p1 * unit + (1 - p1) * nonunit
    if mapping == "prime":
        collapsed = 1.0
        nonunit = ((c_f - 2) * unit + collapsed) / (c_f - 1)
        return p1 * unit + (1 - p1) * nonunit
    if mapping == "assoc":
        block_i = _i64(np.floor(b))
        ways_i = _i64(ways)
        _, count, occupied, valid = _assoc_class_axes(c_lines, ways_i)
        full = block_i[..., None] // occupied
        extra = block_i[..., None] - full * occupied
        w = ways_i[..., None]
        resident = (extra * np.minimum(full + 1, w)
                    + (occupied - extra) * np.minimum(full, w))
        acc = np.sum(np.where(valid, count * resident, 0), axis=-1)
        nonunit = acc / (c_f - 1)
        return p1 * unit + (1 - p1) * nonunit
    raise ValueError(f"mapping must be one of {MAPPINGS}, got {mapping!r}")


def cc_cross_interference_batch(mapping, *, blocking_factor, p_ds,
                                p_stride1_s1, cache_lines, ways=1, t_m=16,
                                footprint_mode="simple") -> np.ndarray:
    """Footprint-model ``I_c^C`` in stall cycles, batched."""
    if footprint_mode not in ("simple", "expected"):
        raise ValueError("footprint_mode must be 'simple' or 'expected'")
    b = _f64(blocking_factor)
    c_f = _f64(cache_lines)
    if footprint_mode == "simple":
        footprint = np.minimum(b, c_f)
    else:
        footprint = cc_expected_footprint_batch(
            mapping, blocking_factor, p_stride1_s1, cache_lines=cache_lines,
            ways=ways)
    hit_probability = footprint / c_f
    p_ds = _f64(p_ds)
    return np.where(p_ds == 0, 0.0, b * p_ds * hit_probability * _f64(t_m))


def cc_element_time_batch(mapping, *, blocking_factor, p_ds, p_stride1_s1,
                          p_stride1_s2, s1="random", s2="random",
                          cache_lines, ways=1, t_m=16,
                          footprint_mode="simple") -> np.ndarray:
    """Eq. (7) over grids: average cycles per element of a cached sweep."""
    b = _f64(blocking_factor)
    p_ds = _f64(p_ds)
    i_s_first = cc_self_interference_batch(
        mapping, blocking_factor, p_stride1_s1, s1, cache_lines=cache_lines,
        ways=ways, t_m=t_m)
    stalls = (1.0 - p_ds) * i_s_first / b
    second_len = b * p_ds
    i_s_second = cc_self_interference_batch(
        mapping, second_len, p_stride1_s2, s2, cache_lines=cache_lines,
        ways=ways, t_m=t_m)
    i_s_second = np.where(second_len >= 1, i_s_second, 0.0)
    i_c = cc_cross_interference_batch(
        mapping, blocking_factor=blocking_factor, p_ds=p_ds,
        p_stride1_s1=p_stride1_s1, cache_lines=cache_lines, ways=ways,
        t_m=t_m, footprint_mode=footprint_mode)
    stalls = stalls + np.where(
        p_ds > 0, p_ds * (i_s_first + i_s_second + i_c) / b, 0.0)
    return 1.0 + stalls


def cached_block_time_batch(blocking_factor, element_time, *, t_m, mvl,
                            loop_overhead=10, strip_overhead=15,
                            start_base=30) -> np.ndarray:
    """Eq. (4)'s bracketed term: one post-load sweep, start-up minus t_m."""
    b = _i64(blocking_factor)
    strips = _ceil_div(b, mvl)
    t_start = _i64(start_base) + _i64(t_m)
    return (loop_overhead + strips * (strip_overhead + t_start - _i64(t_m))
            + b * _f64(element_time))


def cc_outputs_batch(mapping, *, cache_lines, num_banks, t_m, ways=1, mvl=64,
                     blocking_factor, reuse_factor, p_ds, p_stride1_s1=0.25,
                     p_stride1_s2=0.25, s1="random", s2="random",
                     problem_size=None, footprint_mode="simple",
                     loop_overhead=10, strip_overhead=15,
                     start_base=30) -> dict:
    """The full CC/MM output set for one mapping over broadcast grids.

    Returns a dict of arrays: ``element_time``, ``initial_block_time``,
    ``cached_block_time``, ``cycles_per_result``, ``mm_element_time``,
    ``mm_cycles_per_result``, ``sweep_misses``, ``miss_ratio``,
    ``hit_ratio`` — one entry per broadcast grid point.
    """
    if mapping not in MAPPINGS:
        raise ValueError(f"mapping must be one of {MAPPINGS}, got {mapping!r}")
    b = _i64(blocking_factor)
    r = _f64(reuse_factor)
    common = dict(cache_lines=cache_lines, ways=ways, t_m=t_m)
    element = cc_element_time_batch(
        mapping, blocking_factor=b, p_ds=p_ds, p_stride1_s1=p_stride1_s1,
        p_stride1_s2=p_stride1_s2, s1=s1, s2=s2,
        footprint_mode=footprint_mode, **common)
    mm_element = mm_element_time_batch(
        num_banks=num_banks, t_m=t_m, mvl=mvl, p_ds=p_ds,
        p_stride1_s1=p_stride1_s1, p_stride1_s2=p_stride1_s2, s1=s1, s2=s2)
    overheads = dict(loop_overhead=loop_overhead,
                     strip_overhead=strip_overhead, start_base=start_base)
    initial = block_time_batch(b, mm_element, t_m=t_m, mvl=mvl, **overheads)
    cached = cached_block_time_batch(b, element, t_m=t_m, mvl=mvl,
                                     **overheads)
    n = b if problem_size is None else _i64(problem_size)
    blocks = _ceil_div(n, b)
    per_block = initial + cached * (r - 1)
    cycles = per_block * blocks / (n * r)
    # the MM machine's block time is the CC machine's initial (memory-
    # speed) sweep — Eq. (1) both times
    mm_cycles = initial * r * blocks / (n * r)
    misses = cached_sweep_misses_batch(
        mapping, blocking_factor=b, p_ds=p_ds, p_stride1_s1=p_stride1_s1,
        p_stride1_s2=p_stride1_s2, s1=s1, s2=s2,
        footprint_mode=footprint_mode, **common)
    miss_ratio = workload_miss_ratio_batch(b, r, misses)
    return {
        "element_time": element,
        "initial_block_time": initial,
        "cached_block_time": cached,
        "cycles_per_result": cycles,
        "mm_element_time": mm_element,
        "mm_cycles_per_result": mm_cycles,
        "sweep_misses": misses,
        "miss_ratio": miss_ratio,
        "hit_ratio": 1.0 - miss_ratio,
    }


# ---------------------------------------------------------------------------
# miss ratios (Section 3.1's fallacy, batched)
# ---------------------------------------------------------------------------


def cached_sweep_misses_batch(mapping, *, blocking_factor, p_ds,
                              p_stride1_s1, p_stride1_s2, s1="random",
                              s2="random", cache_lines, ways=1, t_m=16,
                              footprint_mode="simple") -> np.ndarray:
    """Expected misses in one post-load sweep over a block, batched."""
    b = _f64(blocking_factor)
    p_ds = _f64(p_ds)
    t_m_f = _f64(t_m)
    common = dict(cache_lines=cache_lines, ways=ways, t_m=t_m)
    i_s_first = cc_self_interference_batch(
        mapping, blocking_factor, p_stride1_s1, s1, **common)
    stalls = (1.0 - p_ds) * i_s_first
    second = b * p_ds
    i_s_second = np.where(
        second >= 1,
        cc_self_interference_batch(mapping, second, p_stride1_s2, s2,
                                   **common),
        0.0)
    i_c = cc_cross_interference_batch(
        mapping, blocking_factor=blocking_factor, p_ds=p_ds,
        p_stride1_s1=p_stride1_s1, footprint_mode=footprint_mode, **common)
    stalls = stalls + np.where(p_ds > 0,
                               p_ds * (i_s_first + i_s_second + i_c), 0.0)
    return stalls / t_m_f


def workload_miss_ratio_batch(blocking_factor, reuse_factor,
                              sweep_misses) -> np.ndarray:
    """Expected miss ratio over a block's ``R`` sweeps, batched."""
    b = _f64(blocking_factor)
    r = _f64(reuse_factor)
    misses = b + (r - 1) * _f64(sweep_misses)
    return np.minimum(1.0, misses / (b * r))


# ---------------------------------------------------------------------------
# bandwidth (Oed & Lange forms, batched)
# ---------------------------------------------------------------------------


def effective_bandwidth_for_stride_batch(stride, num_banks, t_m) -> np.ndarray:
    """Sustained elements/cycle of one stride-``s`` stream, batched."""
    stride, num_banks, t_m = np.broadcast_arrays(
        _i64(stride), _i64(num_banks), _i64(t_m))
    k = np.where(stride == 0, 1,
                 num_banks // np.gcd(num_banks, np.abs(stride)))
    return np.minimum(1.0, k / _f64(t_m))


def expected_effective_bandwidth_batch(num_banks, t_m,
                                       p_stride1=0.25) -> np.ndarray:
    """Expected bandwidth over the paper's stride distribution, batched.

    The scalar O(M) sum over strides ``2 .. M`` collapses to gcd classes
    ``gcd(M, s) = 2^k`` exactly as the footprint sums do.
    """
    m = _i64(num_banks)
    t_m = _i64(t_m)
    p1 = _f64(p_stride1)
    if np.any((p1 < 0) | (p1 > 1)):
        raise ValueError("p_stride1 must be a probability")
    m_exp = _exact_log2(m)
    k = np.arange(int(m_exp.max()) + 1, dtype=np.int64)
    k = k.reshape((1,) * m_exp.ndim + (-1,))
    m_x = m[..., None]
    valid = k <= m_exp[..., None]
    pow_k = np.where(valid, np.int64(1) << k, 1)
    count = np.where(
        k == 0, m_x // 2 - 1,
        np.where(k < m_exp[..., None], m_x // (2 * pow_k),
                 np.where(k == m_exp[..., None], 1, 0)))
    class_bw = np.minimum(1.0, (m_x // pow_k) / _f64(t_m)[..., None])
    nonunit = np.sum(np.where(valid, count * class_bw, 0.0), axis=-1) \
        / (_f64(m) - 1)
    unit = np.minimum(1.0, _f64(m) / _f64(t_m))
    return p1 * unit + (1 - p1) * nonunit


# ---------------------------------------------------------------------------
# optimize.py's searches, batched
# ---------------------------------------------------------------------------


def optimal_blocking_factor_batch(mapping, *, cache_lines, num_banks, t_m,
                                  ways=1, mvl=64, p_ds=0.1, p_stride1=0.25,
                                  candidates=64) -> dict:
    """Vectorised blocking-factor search (``R = B``, the scalar default).

    Scans ``candidates`` evenly spaced blocking factors up to ``C`` per
    grid point and returns ``{"blocking_factor", "cycles_per_result",
    "cache_utilization"}`` arrays — the argmin the scalar
    :func:`repro.analytical.optimize.optimal_blocking_factor` walks to.
    """
    c = _i64(cache_lines)
    grid_shape = np.broadcast_shapes(
        np.shape(c), np.shape(num_banks), np.shape(t_m), np.shape(ways))
    c_x = np.broadcast_to(c, grid_shape)[..., None]
    index = np.arange(1, int(candidates) + 1, dtype=np.int64)
    blocks = np.maximum(1, c_x * index // int(candidates))
    reuse = np.maximum(1.0, _f64(blocks))

    def _x(v):
        return np.broadcast_to(np.asarray(v), grid_shape)[..., None]

    out = cc_outputs_batch(
        mapping, cache_lines=c_x, num_banks=_x(num_banks), t_m=_x(t_m),
        ways=_x(ways), mvl=mvl, blocking_factor=blocks, reuse_factor=reuse,
        p_ds=p_ds, p_stride1_s1=p_stride1, p_stride1_s2=p_stride1)
    cycles = out["cycles_per_result"]
    best = np.argmin(cycles, axis=-1)
    best_x = best[..., None]
    chosen_block = np.take_along_axis(blocks, best_x, axis=-1)[..., 0]
    chosen_cycles = np.take_along_axis(cycles, best_x, axis=-1)[..., 0]
    return {
        "blocking_factor": chosen_block,
        "cycles_per_result": chosen_cycles,
        "cache_utilization": chosen_block / _f64(c),
    }


def crossover_memory_time_batch(mapping, *, cache_lines, num_banks, ways=1,
                                mvl=64, blocking_factor, reuse_factor, p_ds,
                                p_stride1_s1=0.25, p_stride1_s2=0.25,
                                s1="random", s2="random",
                                t_m_values=None) -> np.ndarray:
    """Smallest ``t_m`` at which the cached machine wins, batched.

    The vector counterpart of
    :func:`repro.analytical.optimize.crossover_memory_time` for a fixed
    workload point: scans ``t_m_values`` (default ``2 .. 128``) along a
    trailing axis and returns the first winning ``t_m`` per grid point,
    or ``-1`` where the cache never wins in the range.
    """
    if t_m_values is None:
        t_m_values = np.arange(2, 129, dtype=np.int64)
    t_values = _i64(t_m_values)
    grid_shape = np.broadcast_shapes(
        np.shape(cache_lines), np.shape(num_banks), np.shape(ways),
        np.shape(blocking_factor), np.shape(reuse_factor), np.shape(p_ds))

    def _x(v):
        return np.broadcast_to(np.asarray(v), grid_shape)[..., None]

    t_x = t_values.reshape((1,) * len(grid_shape) + (-1,))
    out = cc_outputs_batch(
        mapping, cache_lines=_x(cache_lines), num_banks=_x(num_banks),
        t_m=t_x, ways=_x(ways), mvl=mvl,
        blocking_factor=_x(blocking_factor),
        reuse_factor=_x(reuse_factor), p_ds=_x(p_ds),
        p_stride1_s1=_x(p_stride1_s1), p_stride1_s2=_x(p_stride1_s2),
        s1=s1, s2=s2)
    wins = out["cycles_per_result"] < out["mm_cycles_per_result"]
    first = np.argmax(wins, axis=-1)
    any_win = np.any(wins, axis=-1)
    return np.where(any_win, t_values[first], -1)
