"""Fit VCM parameters to a recorded address trace.

The seven-tuple VCM is the paper's *assumed* workload shape; this module
closes the loop by estimating the tuple from an actual reference stream
(a recorded kernel trace, or a trace file from another simulator):

* split the read stream into maximal constant-stride *runs* (what a
  vector unit would issue as one strided load);
* the run-length distribution estimates the blocking factor ``B`` (the
  dominant long-run length);
* the per-run stride distribution estimates ``P_stride1``;
* repeat visits to the same run signature estimate the reuse factor ``R``.

The estimator is deliberately simple and transparent — it is a bridging
tool (real kernel -> model parameters -> closed-form prediction), not a
learned model.  Tests check that it recovers the parameters of synthetic
traces built from known VCMs and that the canonical kernels map to
sensible tuples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analytical.vcm import VCM
from repro.trace.records import Trace

__all__ = ["StrideRun", "split_stride_runs", "FittedVCM", "estimate_vcm"]


@dataclass(frozen=True)
class StrideRun:
    """One maximal constant-stride segment of a reference stream.

    Attributes:
        base: address of the first element.
        stride: constant difference between consecutive elements.
        length: element count (>= 1; a lone reference is a length-1 run).
    """

    base: int
    stride: int
    length: int

    @property
    def signature(self) -> tuple[int, int, int]:
        """Identity of the *vector* the run traverses."""
        return (self.base, self.stride, self.length)


def split_stride_runs(trace: Trace, *, reads_only: bool = True) -> list[StrideRun]:
    """Greedy maximal-run decomposition of a reference stream."""
    all_addresses, write_flags = trace.as_arrays()
    if reads_only and write_flags is not None:
        all_addresses = all_addresses[~write_flags]
    addresses = all_addresses.tolist()
    runs: list[StrideRun] = []
    if not addresses:
        return runs
    base = addresses[0]
    stride = 0
    length = 1
    for address in addresses[1:]:
        step = address - (base + (length - 1) * stride)
        if length == 1:
            stride = step
            length = 2
        elif step == stride:
            length += 1
        else:
            runs.append(StrideRun(base, stride if length > 1 else 0, length))
            base = address
            stride = 0
            length = 1
    runs.append(StrideRun(base, stride if length > 1 else 0, length))
    return runs


@dataclass(frozen=True)
class FittedVCM:
    """Estimation result.

    Attributes:
        vcm: the fitted seven-tuple (``s1`` left as ``"random"``; the
            stride *distribution* is the fit, not one stride).
        runs: vector runs found.
        stride_histogram: stride -> run count over significant runs.
        mean_run_length: average significant-run length.
    """

    vcm: VCM
    runs: int
    stride_histogram: dict[int, int]
    mean_run_length: float


def estimate_vcm(trace: Trace, *, min_run_length: int = 4) -> FittedVCM:
    """Estimate a VCM from a trace.

    Args:
        trace: the reference stream.
        min_run_length: runs shorter than this are treated as scalar
            noise and ignored for the stride statistics.

    Raises:
        ValueError: when the trace contains no significant vector runs.
    """
    runs = split_stride_runs(trace)
    significant = [r for r in runs if r.length >= min_run_length]
    if not significant:
        raise ValueError(
            "no vector runs of length >= "
            f"{min_run_length} found; is this a vector trace?"
        )

    stride_counts = Counter(abs(r.stride) for r in significant)
    total = sum(stride_counts.values())
    p_stride1 = stride_counts.get(1, 0) / total

    lengths = [r.length for r in significant]
    blocking = max(lengths)
    mean_length = sum(lengths) / len(lengths)

    visits = Counter(r.signature for r in significant)
    reuse = sum(visits.values()) / len(visits)

    vcm = VCM(
        blocking_factor=blocking,
        reuse_factor=max(1.0, reuse),
        p_ds=0.0,           # interleaving of streams is not recoverable
        s2=None,            # from a flat trace; fit the single-stream view
        p_stride1_s1=p_stride1,
    )
    return FittedVCM(
        vcm=vcm,
        runs=len(significant),
        stride_histogram=dict(stride_counts),
        mean_run_length=mean_length,
    )
