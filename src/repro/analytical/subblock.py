"""Conflict-free sub-block (submatrix) accesses (Section 4).

A blocked matrix algorithm reads ``b1 x b2`` sub-blocks of a ``P x Q``
column-major matrix: ``b2`` unit-stride column pieces of length ``b1``
whose starting addresses are ``P`` apart.  In the prime-mapped cache of
``C`` lines, with ``rho = min(P mod C, C - P mod C)``, the paper selects

    ``b1 = rho``   and   ``b2 = floor(C / b1)``

and the sub-block is **self-interference-free** with cache utilisation
``b1*b2/C`` approaching 1, for a matrix of *any* leading dimension ``P``
(not a multiple of ``C``).  No power-of-two cache can offer this for
general ``P`` — e.g. ``P`` a multiple of the line count stacks every
column on the same lines.

A reproduction note on the paper's stated conditions
----------------------------------------------------
The paper writes the conditions as ``b1 <= rho`` and ``b2 <= floor(C/b1)``
and argues that consecutive columns then land at least ``b1`` lines apart.
Consecutive columns do, but *non-consecutive* columns can wrap in between:
with ``C = 127``, ``P mod C = 66``, ``b1 = 32 <= 66``, ``b2 = 3 <=
floor(127/32)``, column 2 starts at ``2 * 66 mod 127 = 5`` and collides
with column 0's ``[0, 31]``.  The conditions *are* sufficient at the
paper's recommended maximal choice ``b1 = rho`` (the columns then tile the
cache in exact ``b1`` steps), and for smaller ``b1`` whenever
``b2 <= floor(C / rho)``.  This module therefore exposes:

* :func:`max_conflict_free_block` — the paper's choice, provably safe;
* :func:`is_conflict_free` — the *corrected* sufficient condition
  (``b1 <= rho`` and ``b2 <= floor(C / rho)``);
* :func:`satisfies_paper_conditions` — the literal printed condition,
  kept for fidelity;
* :func:`count_subblock_conflicts` — exact ground truth by enumeration,
  used by the tests to certify all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BlockChoice",
    "conflict_free_bounds",
    "max_conflict_free_block",
    "is_conflict_free",
    "satisfies_paper_conditions",
    "subblock_line_map",
    "count_subblock_conflicts",
    "utilization",
]


@dataclass(frozen=True)
class BlockChoice:
    """A chosen sub-block shape with its cache utilisation.

    Attributes:
        b1: column-piece length (rows of the sub-block).
        b2: number of column pieces (columns of the sub-block).
        utilization: ``b1 * b2 / C``.
    """

    b1: int
    b2: int
    utilization: float


def _rho(leading_dimension: int, cache_lines: int) -> int:
    residue = leading_dimension % cache_lines
    return min(residue, cache_lines - residue)


def conflict_free_bounds(leading_dimension: int, cache_lines: int) -> tuple[int, int]:
    """The paper's maximal choice: ``b1 = rho``, ``b2 = floor(C / b1)``.

    Returns ``(b1, b2)``.  ``b1`` is 0 when ``P`` is a multiple of ``C``
    (columns then map on top of each other and no multi-column
    conflict-free block exists).
    """
    if leading_dimension <= 0 or cache_lines <= 0:
        raise ValueError("leading_dimension and cache_lines must be positive")
    b1 = _rho(leading_dimension, cache_lines)
    b2 = cache_lines // b1 if b1 > 0 else 0
    return b1, b2


def max_conflict_free_block(leading_dimension: int, cache_lines: int) -> BlockChoice:
    """The utilisation-maximising conflict-free sub-block of Section 4."""
    b1, b2 = conflict_free_bounds(leading_dimension, cache_lines)
    used = b1 * b2
    return BlockChoice(b1, b2, used / cache_lines)


def is_conflict_free(
    leading_dimension: int, b1: int, b2: int, cache_lines: int
) -> bool:
    """Corrected sufficient condition: ``b1 <= rho`` and ``b2 <= C // rho``.

    Columns step ``rho`` lines apart (ascending when ``P mod C <= C/2``,
    descending otherwise) without wrapping for the first ``C // rho``
    columns, so any ``b1 <= rho`` keeps them disjoint.  Guaranteed to imply
    zero collisions (property-tested against enumeration); not necessary —
    wider blocks may happen to be collision-free for lucky ``P``.
    """
    if b1 <= 0 or b2 <= 0:
        raise ValueError("block dimensions must be positive")
    rho = _rho(leading_dimension, cache_lines)
    if rho == 0:
        return b2 == 1 and b1 <= cache_lines
    return b1 <= rho and b2 <= cache_lines // rho


def satisfies_paper_conditions(
    leading_dimension: int, b1: int, b2: int, cache_lines: int
) -> bool:
    """The paper's literal conditions: ``b1 <= rho`` and ``b2 <= C // b1``.

    Sufficient at ``b1 = rho`` (the recommended choice) but *not* for every
    smaller ``b1`` — see the module docstring for the counterexample.
    """
    if b1 <= 0 or b2 <= 0:
        raise ValueError("block dimensions must be positive")
    return b1 <= _rho(leading_dimension, cache_lines) and b2 <= cache_lines // b1


def subblock_line_map(
    leading_dimension: int,
    b1: int,
    b2: int,
    modulus: int,
    start: int = 0,
) -> list[int]:
    """Cache-line index of every sub-block element under ``mod modulus``.

    Enumerates addresses ``start + row + column * P`` for ``row < b1``,
    ``column < b2`` — the exact reference footprint of a sub-block access —
    and maps each through the given modulus (``2^c`` for direct-mapped,
    ``2^c - 1`` for prime-mapped; line size is one word as in the paper).
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return [
        (start + row + column * leading_dimension) % modulus
        for column in range(b2)
        for row in range(b1)
    ]


def count_subblock_conflicts(
    leading_dimension: int,
    b1: int,
    b2: int,
    modulus: int,
    start: int = 0,
) -> int:
    """Elements that collide with an earlier element of the same sub-block.

    Zero means the whole sub-block is simultaneously cache-resident:
    a *conflict-free* sub-block access.
    """
    lines = subblock_line_map(leading_dimension, b1, b2, modulus, start)
    return len(lines) - len(set(lines))


def utilization(b1: int, b2: int, cache_lines: int) -> float:
    """Fraction of the cache a ``b1 x b2`` sub-block occupies."""
    if cache_lines <= 0:
        raise ValueError("cache_lines must be positive")
    return (b1 * b2) / cache_lines
