"""Expected miss ratios — and why the paper refuses to plot them.

Section 3.1: "Cache miss ratio has been used by many researchers as a
performance measure... However, it is not a very good performance measure
in this context."  The reason is structural: a vector machine without a
cache sends *every* reference to memory yet pipelines them all, while a
cache converts a stream of pipelined accesses into mostly-hits plus a few
*serialising* misses that each cost the full ``t_m``.  A 90%-hit cache can
therefore lose to a 0%-hit cacheless machine.

This module computes the expected miss ratios the analytical models imply,
so that the misleading comparison can be exhibited quantitatively (see
``demonstrate_miss_ratio_fallacy`` and the corresponding tests): a
configuration where the direct-mapped CC-model enjoys a seemingly healthy
hit ratio and still runs *slower* than the MM-model in cycles per result.

The public functions route known model classes through the vectorised
kernels in :mod:`repro.analytical.batched`, so single-point evaluation
and grid search share one production code path.  The original closed
forms are retained as ``scalar_cached_sweep_misses`` /
``scalar_workload_miss_ratio``: they are the references the
``analytical-batched`` verify oracle differences the batched path
against, and the fallback for model classes the batched engine does not
mirror.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.cc import CCModel, DirectMappedModel, PrimeMappedModel
from repro.analytical.mm import MMModel
from repro.analytical.set_assoc import SetAssociativeModel
from repro.analytical.vcm import VCM

__all__ = [
    "MissRatioView",
    "cached_sweep_misses",
    "workload_miss_ratio",
    "scalar_cached_sweep_misses",
    "scalar_workload_miss_ratio",
    "demonstrate_miss_ratio_fallacy",
]


def _batched_mapping(model: CCModel) -> tuple[str, int] | None:
    """``(mapping, ways)`` when the batched engine mirrors this model."""
    if isinstance(model, SetAssociativeModel):
        return "assoc", model.ways
    if isinstance(model, DirectMappedModel):
        return "direct", 1
    if isinstance(model, PrimeMappedModel):
        return "prime", 1
    return None


def scalar_cached_sweep_misses(model: CCModel, vcm: VCM) -> float:
    """The retained scalar form of :func:`cached_sweep_misses`."""
    b = vcm.blocking_factor
    t_m = model.config.t_m
    stalls = vcm.p_ss * model.self_interference(b, vcm.p_stride1_s1, vcm.s1)
    if vcm.p_ds > 0:
        second = vcm.second_stream_length
        stalls += vcm.p_ds * (
            model.self_interference(b, vcm.p_stride1_s1, vcm.s1)
            + (model.self_interference(second, vcm.p_stride1_s2, vcm.s2)
               if second >= 1 else 0.0)
            + model.cross_interference(vcm)
        )
    return stalls / t_m


def cached_sweep_misses(model: CCModel, vcm: VCM) -> float:
    """Expected misses in one post-load sweep over a block.

    Derived from the model's stall terms: every non-compulsory miss costs
    ``t_m`` stall cycles, so dividing the expected sweep stalls by ``t_m``
    recovers the expected miss count.
    """
    target = _batched_mapping(model)
    if target is None:
        return scalar_cached_sweep_misses(model, vcm)
    from repro.analytical import batched

    mapping, ways = target
    return float(batched.cached_sweep_misses_batch(
        mapping, blocking_factor=vcm.blocking_factor, p_ds=vcm.p_ds,
        p_stride1_s1=vcm.p_stride1_s1, p_stride1_s2=vcm.p_stride1_s2,
        s1=vcm.s1, s2=vcm.s2, cache_lines=model.config.cache_lines,
        ways=ways, t_m=model.config.t_m,
        footprint_mode=model.footprint_mode))


def scalar_workload_miss_ratio(model: CCModel, vcm: VCM) -> float:
    """The retained scalar form of :func:`workload_miss_ratio`."""
    b = vcm.blocking_factor
    r = vcm.reuse_factor
    misses = b + (r - 1) * scalar_cached_sweep_misses(model, vcm)
    return min(1.0, misses / (b * r))


def workload_miss_ratio(model: CCModel, vcm: VCM) -> float:
    """Expected miss ratio over a whole block's ``R`` sweeps.

    The first sweep misses everything (compulsory); the remaining
    ``R - 1`` sweeps miss :func:`cached_sweep_misses` each.  References
    counted are the first stream's ``B`` per sweep (consistent with the
    cycles-per-result normalisation).
    """
    if _batched_mapping(model) is None:
        return scalar_workload_miss_ratio(model, vcm)
    from repro.analytical import batched

    return float(batched.workload_miss_ratio_batch(
        vcm.blocking_factor, vcm.reuse_factor,
        cached_sweep_misses(model, vcm)))


@dataclass(frozen=True)
class MissRatioView:
    """One configuration seen through both metrics.

    Attributes:
        hit_ratio: the cache's expected hit ratio (looks good).
        cc_cycles: the CC-model's cycles per result.
        mm_cycles: the MM-model's cycles per result (no cache at all).
        cache_loses: ``True`` when the healthy-looking cache is slower.
    """

    hit_ratio: float
    cc_cycles: float
    mm_cycles: float

    @property
    def cache_loses(self) -> bool:
        return self.cc_cycles > self.mm_cycles


def demonstrate_miss_ratio_fallacy(
    cc_model: CCModel, mm_model: MMModel, vcm: VCM
) -> MissRatioView:
    """Evaluate one configuration under both metrics."""
    return MissRatioView(
        hit_ratio=1.0 - workload_miss_ratio(cc_model, vcm),
        cc_cycles=cc_model.cycles_per_result(vcm),
        mm_cycles=mm_model.cycles_per_result(vcm),
    )
