"""Analytical model of a set-associative CC-machine (Section 2.1's question).

The paper dismisses higher associativity in a paragraph: for a fixed
capacity ``C``, a ``k``-way cache has only ``S = C / k`` sets, so a strided
sweep folds onto fewer sets, and LRU is *anti-optimal* for cyclic vector
reuse — when a set receives more distinct lines than it has ways, the
least-recently-used line is exactly the one needed soonest, and the reuse
sweep misses everything in that set.

This module turns that paragraph into equations.  A stride-``s`` sweep of
``B`` elements over ``S = C/k`` sets:

* occupies ``S / gcd(S, s)`` distinct sets;
* puts ``j = B * gcd(S, s) / S`` lines into each occupied set, referenced
  cyclically;
* under LRU, a reuse sweep hits only if ``j <= k`` — otherwise every one
  of the ``B`` accesses in the over-subscribed sets misses.

So the expected self-interference stall per cached sweep is an
all-or-nothing sum over the stride's gcd class, which this model evaluates
exactly over the paper's stride distribution.  The direct-mapped case
(``k = 1``) is *not* identical to Eq. (5)/(6): the paper's direct-mapped
count ``B - C/gcd`` charges only the folded-out lines, implicitly assuming
the survivors still hit, which is optimistic for cyclic sweeps.  Both
conventions are provided; the set-associative model uses the cyclic-LRU
(all-or-nothing) rule that trace simulation confirms.
"""

from __future__ import annotations

import math

from repro.analytical.base import MachineConfig
from repro.analytical.cc import CCModel

__all__ = ["SetAssociativeModel"]


class SetAssociativeModel(CCModel):
    """CC-machine with a ``ways``-way LRU set-associative vector cache.

    Args:
        config: machine parameters; ``config.cache_lines`` is the total
            capacity ``C`` (sets are ``C / ways``).
        ways: associativity ``k``; must divide the capacity, which must
            leave a power-of-two set count.

    Example:
        >>> cfg = MachineConfig(cache_lines=8192)
        >>> two_way = SetAssociativeModel(cfg, ways=2)
        >>> two_way.sets
        4096
    """

    def __init__(self, config: MachineConfig, ways: int,
                 footprint_mode: str = "simple") -> None:
        super().__init__(config, footprint_mode)
        if ways < 1:
            raise ValueError("ways must be at least 1")
        if config.cache_lines % ways:
            raise ValueError("ways must divide the cache capacity")
        sets = config.cache_lines // ways
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self.ways = ways
        self.sets = sets

    def _per_set_split(self, block: int, stride: int) -> tuple[int, int, int]:
        """How a stride-``stride`` sweep of ``block`` lines lands on sets.

        Returns ``(occupied, full, extra)``: the sweep visits ``occupied``
        distinct sets cyclically, each receiving ``full`` lines, with the
        first ``extra`` of them receiving one more.
        """
        if stride == 0:
            return 1, block, 0
        g = math.gcd(self.sets, abs(stride))
        occupied = self.sets // g
        full, extra = divmod(block, occupied)
        return occupied, full, extra

    def self_stalls_for_stride(self, block: float, stride: int) -> float:
        """Cyclic-LRU rule, per set: a set holding ``j > k`` cyclically
        reused lines misses on all ``j`` of them; a set within its way
        budget misses on none."""
        block = int(block)
        occupied, full, extra = self._per_set_split(block, stride)
        misses = 0
        if full + 1 > self.ways:
            misses += extra * (full + 1)
        if full > self.ways:
            misses += (occupied - extra) * full
        return misses * self.config.t_m

    def self_interference(
        self, block: float, p_stride1: float, stride: int | str | None
    ) -> float:
        """Expected stalls over the paper's stride distribution.

        Unit stride never over-subscribes a set while ``B <= C``; non-unit
        strides are uniform on ``2 .. C`` and contribute per gcd class.
        """
        if stride is None or block < 1:
            return 0.0
        if stride != "random":
            return self.self_stalls_for_stride(block, int(stride))
        c_lines = self.config.cache_lines
        total = 0.0
        # classify strides 2..C by g = gcd(sets, s); strides come from the
        # CC-model's range 2..C = 2..(sets * ways)
        for s in range(2, c_lines + 1):
            total += self.self_stalls_for_stride(block, s)
        return (1.0 - p_stride1) * total / (c_lines - 1)

    def expected_footprint(self, block: float, p_stride1: float) -> float:
        """Resident lines of a strided vector: per occupied set, at most
        ``k`` of its cyclically mapped lines survive."""
        c_lines = self.config.cache_lines
        footprint_unit = min(block, float(c_lines))
        acc = 0.0
        for s in range(2, c_lines + 1):
            occupied, full, extra = self._per_set_split(int(block), s)
            acc += (extra * min(full + 1, self.ways)
                    + (occupied - extra) * min(full, self.ways))
        nonunit = acc / (c_lines - 1)
        return p_stride1 * footprint_unit + (1 - p_stride1) * nonunit
