"""Analytical model of the blocked two-dimensional FFT (Section 4).

An ``N``-point Cooley–Tukey FFT with ``N = B2 x B1`` is computed as a 2-D
decomposition over a ``B2``-row, ``B1``-column matrix stored column-major:

1. **Row phase** — ``B2`` FFTs of ``B1`` points each.  A row of a
   column-major matrix has stride ``B2``, so in a direct-mapped cache a
   row's footprint is ``C / gcd(B2, C)`` lines; since ``B2`` is a power of
   two that footprint collapses and each row sweep suffers
   ``B1 - C/gcd(B2, C)`` conflict misses (when positive).  The prime cache
   keeps the full footprint for every ``B2`` that is not a multiple of the
   (prime) line count.  Reuse per block is ``log2(B1)`` butterfly stages.
2. **Column phase** — after a twiddle multiply, ``B1`` FFTs of ``B2``
   points at stride 1; conflict-free in either cache when ``B2 < C``,
   with ``log2(B2)`` stages of reuse.

Twiddle factors are assumed register-resident, so ``P_ds = 0`` throughout
(the paper's stipulation).  The initial load of each block is costed at
memory speed with the *actual* stride (the paper's "compulsory misses
should be adjusted based on the FFT stride characteristics").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analytical.base import ceil_div
from repro.analytical.cc import CCModel
from repro.analytical.mm import self_stalls_for_stride

__all__ = ["FFTShape", "BlockedFFTModel"]


@dataclass(frozen=True)
class FFTShape:
    """A two-dimensional FFT decomposition ``N = B2 x B1``.

    Attributes:
        b1: row length (points per row FFT); power of two >= 2.
        b2: column length (points per column FFT); power of two >= 2.
    """

    b1: int
    b2: int

    def __post_init__(self) -> None:
        for name, value in (("b1", self.b1), ("b2", self.b2)):
            if value < 2 or value & (value - 1):
                raise ValueError(f"{name} must be a power of two >= 2, got {value}")

    @property
    def n(self) -> int:
        """Total points ``N = B1 * B2``."""
        return self.b1 * self.b2


class BlockedFFTModel:
    """Execution time of the blocked 2-D FFT on a CC-model machine.

    Args:
        cache_model: a :class:`~repro.analytical.cc.CCModel` (direct or
            prime) supplying both the machine config and the mapping's
            fixed-stride conflict behaviour.

    Example:
        >>> from repro.analytical.base import MachineConfig
        >>> from repro.analytical.cc import PrimeMappedModel
        >>> model = BlockedFFTModel(PrimeMappedModel(
        ...     MachineConfig(cache_lines=8191)))
        >>> model.cycles_per_point(FFTShape(b1=256, b2=64)) > 1.0
        True
    """

    def __init__(self, cache_model: CCModel) -> None:
        self.cache_model = cache_model
        self.config = cache_model.config

    # -- one phase -------------------------------------------------------------

    def _phase_time(self, block: int, reuse: float, stride: int, blocks: int) -> float:
        """Eq. (4) for one phase: ``blocks`` sweeps of ``block`` elements at a
        fixed ``stride``, each reused ``reuse`` times."""
        cfg = self.config
        strips = ceil_div(block, cfg.mvl)

        # Initial load straight from interleaved memory at the real stride.
        memory_element = 1.0 + self_stalls_for_stride(stride, cfg) / cfg.mvl
        initial = (
            cfg.loop_overhead
            + strips * (cfg.strip_overhead + cfg.t_start)
            + block * memory_element
        )

        # Cached sweeps: conflict misses from the mapping, t_m each.
        conflict_stalls = self.cache_model.self_stalls_for_stride(block, stride)
        cached_element = 1.0 + conflict_stalls / block
        cached = (
            cfg.loop_overhead
            + strips * (cfg.strip_overhead + cfg.t_start - cfg.t_m)
            + block * cached_element
        )
        return (initial + cached * (reuse - 1)) * blocks

    def row_phase_time(self, shape: FFTShape) -> float:
        """Phase 1: ``B2`` row FFTs of ``B1`` points at stride ``B2``."""
        return self._phase_time(
            block=shape.b1,
            reuse=math.log2(shape.b1),
            stride=shape.b2,
            blocks=shape.b2,
        )

    def column_phase_time(self, shape: FFTShape) -> float:
        """Phase 2: ``B1`` column FFTs of ``B2`` points at stride 1."""
        return self._phase_time(
            block=shape.b2,
            reuse=math.log2(shape.b2),
            stride=1,
            blocks=shape.b1,
        )

    def total_time(self, shape: FFTShape) -> float:
        """Both phases (the twiddle multiply rides along with phase 2)."""
        return self.row_phase_time(shape) + self.column_phase_time(shape)

    def cycles_per_point(self, shape: FFTShape) -> float:
        """The paper's Figure-11b measure: total time over ``N`` points."""
        return self.total_time(shape) / shape.n

    def row_conflict_misses(self, shape: FFTShape) -> float:
        """Conflict misses of one cached row sweep (0 for a conflict-free
        mapping) — the quantity the paper quotes as ``B1 - C/gcd(B2, C)``."""
        return (
            self.cache_model.self_stalls_for_stride(shape.b1, shape.b2)
            / self.config.t_m
        )
