"""Analytical execution-time models of the cache-based CC-model machine.

Implements Sections 3.3 (direct-mapped) and 4 (prime-mapped):

* Eq. (5)/(6): direct-mapped self-interference ``I_s^C(B)`` — the divisor
  sum and the paper's closed form (``t_m`` stall per conflict miss, since
  vector-cache misses are not pipelined).
* Footprint cross-interference ``I_c^C = B^2 * P_ds / C * t_m``.
* Eq. (7): ``T_elemt^C``.  The paper prints the double-stream term as
  ``I_s^C(B) + I_c^C(B*P_ds) + I_c^C``; we read the middle term as
  ``I_s^C(B*P_ds)`` — the self-interference of the second stream, whose
  length the model derives as ``B * P_ds`` — mirroring Eq. (2)'s
  self+self+cross structure (see DESIGN.md).
* Eq. (4): total time — the first sweep runs at memory speed (Eq. (1)
  with the MM element time: compulsory misses are pipelined), the
  remaining ``R - 1`` sweeps run out of the cache with start-up reduced
  by ``t_m``.
* Eq. (8): prime-mapped self-interference — only strides that are
  multiples of the (prime) line count collide, so the conditional
  expectation collapses to ``(1 - P_stride1) * (B - 1) / (C - 1) * t_m``.

Cross-interference footprints: the paper applies the ``B/C`` footprint
probability to both organisations.  ``footprint_mode="expected"`` refines
that with the stride-dependent expected footprint
``min(B, C / gcd(C, s1))`` — smaller for the direct-mapped cache whose
strided vectors fold onto fewer lines — which reproduces the paper's
qualitative remark that the prime cache's cross-interference is severer.
"""

from __future__ import annotations

import math

from repro.analytical.base import MachineConfig, ceil_div
from repro.analytical.mm import MMModel
from repro.analytical.vcm import VCM

__all__ = ["CCModel", "DirectMappedModel", "PrimeMappedModel"]


class CCModel:
    """Shared scaffolding of the cache-based machine models (Figure 3).

    Subclasses supply the mapping-specific self-interference term and the
    footprint a strided vector occupies.

    Args:
        config: machine parameters; ``config.cache_lines`` is ``C``.
        footprint_mode: ``"simple"`` (paper: probability ``B/C``) or
            ``"expected"`` (stride-aware expected footprint).
    """

    def __init__(self, config: MachineConfig, footprint_mode: str = "simple") -> None:
        if footprint_mode not in ("simple", "expected"):
            raise ValueError("footprint_mode must be 'simple' or 'expected'")
        self.config = config
        self.footprint_mode = footprint_mode
        self._mm = MMModel(config)

    # -- mapping-specific pieces (overridden) ---------------------------------

    def self_interference(
        self, block: float, p_stride1: float, stride: int | str | None
    ) -> float:
        """Expected ``I_s^C`` stall cycles for one ``block``-element sweep."""
        raise NotImplementedError

    def expected_footprint(self, block: float, p_stride1: float) -> float:
        """Expected distinct lines a ``block``-element vector occupies."""
        raise NotImplementedError

    def self_stalls_for_stride(self, block: float, stride: int) -> float:
        """Stall cycles of one fixed-stride ``block``-element cached sweep."""
        raise NotImplementedError

    # -- shared model ----------------------------------------------------------

    def cross_interference(self, vcm: VCM) -> float:
        """Footprint-model cross-interference ``I_c^C`` in stall cycles.

        Simple mode: each of the ``B * P_ds`` second-stream elements lands
        in the first vector's footprint with probability ``B / C``
        (paper: ``I_c^C = B^2 P_ds / C * t_m``).  Expected mode replaces
        ``B`` in the probability with the stride-aware footprint.
        """
        cfg = self.config
        b = vcm.blocking_factor
        if vcm.p_ds == 0:
            return 0.0
        if self.footprint_mode == "simple":
            footprint = float(min(b, cfg.cache_lines))
        else:
            footprint = self.expected_footprint(b, vcm.p_stride1_s1)
        hit_probability = footprint / cfg.cache_lines
        return b * vcm.p_ds * hit_probability * cfg.t_m

    def element_time(self, vcm: VCM) -> float:
        """Eq. (7): average cycles per element of a cached sweep."""
        b = vcm.blocking_factor
        i_s_first = self.self_interference(b, vcm.p_stride1_s1, vcm.s1)
        stalls = vcm.p_ss * i_s_first / b
        if vcm.p_ds > 0:
            second_len = vcm.second_stream_length
            i_s_second = (
                self.self_interference(second_len, vcm.p_stride1_s2, vcm.s2)
                if second_len >= 1
                else 0.0
            )
            i_c = self.cross_interference(vcm)
            stalls += vcm.p_ds * (i_s_first + i_s_second + i_c) / b
        return 1.0 + stalls

    def initial_block_time(self, vcm: VCM) -> float:
        """Eq. (1) applied to the first sweep: loading straight from the
        interleaved memory, misses pipelined (the MM element time)."""
        return self._mm.block_time(vcm)

    def cached_block_time(self, vcm: VCM, element_time: float | None = None) -> float:
        """One post-load sweep: Eq. (4)'s bracketed term.

        Start-up drops by ``t_m`` because the operands come from the cache.
        """
        cfg = self.config
        if element_time is None:
            element_time = self.element_time(vcm)
        strips = ceil_div(vcm.blocking_factor, cfg.mvl)
        return (
            cfg.loop_overhead
            + strips * (cfg.strip_overhead + cfg.t_start - cfg.t_m)
            + vcm.blocking_factor * element_time
        )

    def total_time(self, vcm: VCM, problem_size: int | None = None) -> float:
        """Eq. (4): ``{T_B + cached_sweep * (R - 1)} * ceil(N/B)``."""
        n = problem_size if problem_size is not None else vcm.blocking_factor
        blocks = ceil_div(n, vcm.blocking_factor)
        per_block = self.initial_block_time(vcm) + self.cached_block_time(vcm) * (
            vcm.reuse_factor - 1
        )
        return per_block * blocks

    def cycles_per_result(self, vcm: VCM, problem_size: int | None = None) -> float:
        """Total time divided by ``N * R`` — the paper's plotted measure."""
        n = problem_size if problem_size is not None else vcm.blocking_factor
        return self.total_time(vcm, n) / (n * vcm.reuse_factor)


class DirectMappedModel(CCModel):
    """CC-model with a conventional direct-mapped cache (Section 3.3).

    Example:
        >>> cfg = MachineConfig(num_banks=32, memory_access_time=16,
        ...                     cache_lines=8192)
        >>> model = DirectMappedModel(cfg)
        >>> vcm = VCM(blocking_factor=4096, reuse_factor=4096, p_ds=0.3)
        >>> model.cycles_per_result(vcm) > 1.0
        True
    """

    def self_interference(
        self, block: float, p_stride1: float, stride: int | str | None
    ) -> float:
        """Eq. (6) closed form (general ``B``), deterministic for fixed strides."""
        if stride is None or block < 1:
            return 0.0
        if stride != "random":
            return self.self_stalls_for_stride(block, int(stride))
        c_lines = self.config.cache_lines
        b = block
        log_floor = int(math.floor(math.log2(b))) if b > 1 else 0
        pow_floor = float(2**log_floor)
        bracket = (3.0 * b * pow_floor - 2.0 * pow_floor * pow_floor - 1.0) / 3.0
        return (1.0 - p_stride1) / (c_lines - 1) * bracket * self.config.t_m

    def self_interference_sum_form(self, block: int, p_stride1: float) -> float:
        """Eq. (5): the divisor-function sum behind the closed form."""
        c_lines = self.config.cache_lines
        c_exp = int(math.log2(c_lines))
        if c_lines & (c_lines - 1):
            raise ValueError("sum form requires a power-of-two line count")
        total = 0.0
        upper = c_exp - math.ceil(math.log2(c_lines / block)) if block < c_lines \
            else c_exp
        for i in range(1, upper + 1):
            lines_occupied = c_lines // 2 ** (c_exp - i)
            if block <= lines_occupied:
                continue
            total += (block - lines_occupied) * 2 ** (i - 1)
        total += block - 1  # gcd(C, s) = C: everything lands on one line
        return (1.0 - p_stride1) / (c_lines - 1) * total * self.config.t_m

    def self_stalls_for_stride(self, block: float, stride: int) -> float:
        """Conflict misses of one fixed-stride sweep, ``t_m`` each.

        ``B - C / gcd(C, s)`` misses when the sweep's line footprint is
        smaller than the vector (zero otherwise).
        """
        c_lines = self.config.cache_lines
        if stride == 0:
            footprint = 1
        else:
            footprint = c_lines // math.gcd(c_lines, abs(stride))
        misses = max(0.0, block - footprint)
        return misses * self.config.t_m

    def expected_footprint(self, block: float, p_stride1: float) -> float:
        """``E[min(B, C / gcd(C, s))]`` over the stride distribution."""
        c_lines = self.config.cache_lines
        c_exp = int(math.log2(c_lines))
        footprint_unit = min(block, float(c_lines))
        # strides uniform on 2..C: count strides per gcd class 2^k
        acc = 0.0
        for k in range(c_exp + 1):
            if k == 0:
                count = c_lines // 2 - 1  # odd strides in 2..C (excl. 1)
            elif k < c_exp:
                count = c_lines // 2 ** (k + 1)
            else:
                count = 1  # the stride C itself
            acc += count * min(block, c_lines / 2**k)
        nonunit = acc / (c_lines - 1)
        return p_stride1 * footprint_unit + (1 - p_stride1) * nonunit


class PrimeMappedModel(CCModel):
    """CC-model with the prime-mapped cache (Section 4).

    ``config.cache_lines`` should be a Mersenne prime ``2^c - 1``; the
    constructor accepts any value but the conflict-freedom reasoning only
    holds for a prime line count.
    """

    def self_interference(
        self, block: float, p_stride1: float, stride: int | str | None
    ) -> float:
        """Eq. (8): only stride multiples of ``C`` self-interfere."""
        if stride is None or block < 1:
            return 0.0
        if stride != "random":
            return self.self_stalls_for_stride(block, int(stride))
        c_lines = self.config.cache_lines
        return (1.0 - p_stride1) * (block - 1) / (c_lines - 1) * self.config.t_m

    def self_stalls_for_stride(self, block: float, stride: int) -> float:
        """Fixed-stride sweep: conflict-free unless ``C`` divides the stride."""
        c_lines = self.config.cache_lines
        if stride != 0 and stride % c_lines != 0:
            footprint = c_lines // math.gcd(c_lines, abs(stride))
            misses = max(0.0, block - footprint)
        else:
            misses = max(0.0, block - 1)
        return misses * self.config.t_m

    def expected_footprint(self, block: float, p_stride1: float) -> float:
        """Every stride except the single multiple of ``C`` spreads over the
        whole cache, so the footprint is ``min(B, C)`` almost surely."""
        c_lines = self.config.cache_lines
        full = min(block, float(c_lines))
        collapsed = 1.0  # stride == C folds everything onto one line
        nonunit = ((c_lines - 2) * full + collapsed) / (c_lines - 1)
        return p_stride1 * full + (1 - p_stride1) * nonunit
