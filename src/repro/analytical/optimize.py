"""Design-space search over the analytical models.

The figures answer "what happens at parameter X"; a user of the models
usually wants the inverse questions:

* **What blocking factor should I compile for?**
  (:func:`optimal_blocking_factor`) — for the direct-mapped cache the
  answer is a small fraction of the capacity (the paper's "cache
  utilisation is very poor" observation); for the prime-mapped cache it
  is essentially the whole cache.
* **At what memory speed does a cache start paying off?**
  (:func:`crossover_memory_time`) — the Figure-4/7 crossovers as a
  function, not a plot.

Both searches walk the closed-form models, so they are exact with respect
to the model and fast enough to embed in a compiler heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.cc import CCModel
from repro.analytical.mm import MMModel
from repro.analytical.vcm import VCM

__all__ = [
    "BlockingChoice",
    "optimal_blocking_factor",
    "full_cache_penalty",
    "crossover_memory_time",
]


@dataclass(frozen=True)
class BlockingChoice:
    """Result of a blocking-factor search.

    Attributes:
        blocking_factor: the best ``B`` found.
        cycles_per_result: the model's cost at that ``B``.
        cache_utilization: ``B / C`` — how much of the cache the choice
            actually exploits.
    """

    blocking_factor: int
    cycles_per_result: float
    cache_utilization: float


def optimal_blocking_factor(
    model: CCModel,
    *,
    reuse_of_block=None,
    p_ds: float = 0.1,
    p_stride1: float = 0.25,
    candidates=None,
) -> BlockingChoice:
    """Search for the cycles-per-result-minimising blocking factor.

    Args:
        model: a CC-model (direct, prime or set-associative).
        reuse_of_block: callable ``B -> R`` giving the reuse a blocked
            algorithm extracts from a block of that size; defaults to
            ``R = B`` (matmul-like: a b x b block is reused b times and
            ``B = b^2`` — any monotone choice gives the same argmax
            structure).
        p_ds / p_stride1: workload mix, defaulting to the figures'.
        candidates: iterable of ``B`` values to consider; defaults to a
            sweep up to the cache capacity.
    """
    cache_lines = model.config.cache_lines
    if reuse_of_block is None:
        reuse_of_block = lambda b: b  # noqa: E731 - small local default
    if candidates is None:
        candidates = [max(1, cache_lines * i // 64) for i in range(1, 65)]
    best: BlockingChoice | None = None
    for block in candidates:
        if block < 1 or block > cache_lines:
            continue
        vcm = VCM(
            blocking_factor=int(block),
            reuse_factor=max(1.0, reuse_of_block(block)),
            p_ds=p_ds,
            p_stride1_s1=p_stride1,
            p_stride1_s2=p_stride1,
        )
        cycles = model.cycles_per_result(vcm)
        if best is None or cycles < best.cycles_per_result:
            best = BlockingChoice(int(block), cycles, block / cache_lines)
    if best is None:
        raise ValueError("no valid blocking-factor candidates")
    return best


def full_cache_penalty(
    model: CCModel,
    *,
    reuse_of_block=None,
    p_ds: float = 0.1,
    p_stride1: float = 0.25,
) -> float:
    """How much blocking at the *whole* cache costs versus the optimum.

    Returns ``cycles(B = C) / cycles(B_optimal)``.  This is the number
    behind the paper's utilisation story: for the prime-mapped cache the
    penalty is a few percent (block as big as you like), for the
    direct-mapped cache it is a large factor (you must leave most of the
    cache idle to stay fast).
    """
    best = optimal_blocking_factor(
        model, reuse_of_block=reuse_of_block, p_ds=p_ds, p_stride1=p_stride1
    )
    cache_lines = model.config.cache_lines
    if reuse_of_block is None:
        reuse_of_block = lambda b: b  # noqa: E731 - small local default
    full_vcm = VCM(
        blocking_factor=cache_lines,
        reuse_factor=max(1.0, reuse_of_block(cache_lines)),
        p_ds=p_ds,
        p_stride1_s1=p_stride1,
        p_stride1_s2=p_stride1,
    )
    return model.cycles_per_result(full_vcm) / best.cycles_per_result


def crossover_memory_time(
    make_vcm,
    *,
    cache_model_factory,
    mm_model_factory,
    t_m_range=range(2, 129),
) -> int | None:
    """Smallest ``t_m`` at which the cached machine beats the cacheless one.

    Args:
        make_vcm: callable ``t_m -> VCM`` (usually ignores ``t_m``).
        cache_model_factory: callable ``t_m -> CCModel``.
        mm_model_factory: callable ``t_m -> MMModel``.
        t_m_range: memory times to scan, ascending.

    Returns ``None`` when the cache never wins in the range.
    """
    for t_m in t_m_range:
        vcm = make_vcm(t_m)
        cc = cache_model_factory(t_m)
        mm = mm_model_factory(t_m)
        if not isinstance(mm, MMModel):
            raise TypeError("mm_model_factory must build an MMModel")
        if cc.cycles_per_result(vcm) < mm.cycles_per_result(vcm):
            return t_m
    return None
