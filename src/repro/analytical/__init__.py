"""The paper's analytical performance model (Sections 3 and 4): the VCM
seven-tuple, the MM-model and CC-model execution-time equations, the
congruence-based cross-interference solver, and the blocked-FFT and
sub-block analyses."""

from repro.analytical.bandwidth import (
    banks_needed_for_full_bandwidth,
    effective_bandwidth_for_stride,
    expected_effective_bandwidth,
)
from repro.analytical.base import MachineConfig, ceil_div
from repro.analytical.fit import (
    FittedVCM,
    StrideRun,
    estimate_vcm,
    split_stride_runs,
)
from repro.analytical.cc import CCModel, DirectMappedModel, PrimeMappedModel
from repro.analytical.congruence import (
    average_cross_stalls,
    cross_stalls,
    expected_cross_stalls,
    solve_linear_congruence,
)
from repro.analytical.fft import BlockedFFTModel, FFTShape
from repro.analytical.missratio import (
    MissRatioView,
    cached_sweep_misses,
    scalar_cached_sweep_misses,
    scalar_workload_miss_ratio,
    demonstrate_miss_ratio_fallacy,
    workload_miss_ratio,
)
from repro.analytical.mm import MMModel, self_stalls_for_stride
from repro.analytical.optimize import (
    BlockingChoice,
    crossover_memory_time,
    full_cache_penalty,
    optimal_blocking_factor,
)
from repro.analytical.set_assoc import SetAssociativeModel
from repro.analytical.surrogate import (
    apply_constraints,
    evaluate_grid,
    evaluate_points,
    pareto_front,
)
from repro.analytical.subblock import (
    BlockChoice,
    conflict_free_bounds,
    count_subblock_conflicts,
    is_conflict_free,
    max_conflict_free_block,
    subblock_line_map,
    utilization,
)
from repro.analytical.vcm import VCM, StrideSpec

__all__ = [
    "BlockChoice",
    "BlockingChoice",
    "BlockedFFTModel",
    "CCModel",
    "DirectMappedModel",
    "FFTShape",
    "FittedVCM",
    "MMModel",
    "MissRatioView",
    "MachineConfig",
    "PrimeMappedModel",
    "SetAssociativeModel",
    "StrideRun",
    "StrideSpec",
    "VCM",
    "apply_constraints",
    "average_cross_stalls",
    "banks_needed_for_full_bandwidth",
    "cached_sweep_misses",
    "ceil_div",
    "conflict_free_bounds",
    "count_subblock_conflicts",
    "cross_stalls",
    "crossover_memory_time",
    "demonstrate_miss_ratio_fallacy",
    "effective_bandwidth_for_stride",
    "estimate_vcm",
    "evaluate_grid",
    "evaluate_points",
    "expected_cross_stalls",
    "expected_effective_bandwidth",
    "full_cache_penalty",
    "is_conflict_free",
    "max_conflict_free_block",
    "optimal_blocking_factor",
    "pareto_front",
    "scalar_cached_sweep_misses",
    "scalar_workload_miss_ratio",
    "self_stalls_for_stride",
    "solve_linear_congruence",
    "split_stride_runs",
    "subblock_line_map",
    "utilization",
    "workload_miss_ratio",
]
