"""Design-space surrogate over the vectorised analytical stack.

:mod:`repro.analytical.batched` turns the paper's closed forms into
array kernels; this module is the thin facade that makes them usable as
a *surrogate model* for design-space search:

``evaluate_grid``
    score a broadcastable grid of (mapping, cache size, associativity,
    banks, ``t_m``) x workload points in one call — the engine behind
    ``repro optimize`` and ``bench_optimize``.
``evaluate_points``
    score a heterogeneous list of per-point dicts (the serve
    ``vcm_batch`` payload), grouping compatible points into as few
    vectorised calls as possible and returning per-point dicts that are
    supersets of the scalar ``vcm_query`` result.
``apply_constraints`` / ``pareto_front``
    the filtering and non-dominated-extraction steps of the optimizer.

Everything here is pure and deterministic: the same grid always
produces the same arrays, so results are safe to content-address.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from . import batched

__all__ = [
    "POINT_DEFAULTS",
    "apply_constraints",
    "canonical_point",
    "evaluate_grid",
    "evaluate_points",
    "pareto_front",
]


# Defaults mirror ``repro.serve.queries.vcm_query`` so a ``vcm_batch``
# point with the same parameters means the same machine.  ``ways`` is
# the one addition (the scalar query only serves direct/prime).
POINT_DEFAULTS: dict[str, Any] = {
    "mapping": "prime",
    "cache_lines": 8191,
    "banks": 64,
    "t_m": 32,
    "ways": 1,
    "blocking_factor": 1024,
    "reuse_factor": 32.0,
    "p_ds": 0.03125,
    "s1": "random",
    "s2": "random",
    "p_stride1_s1": 0.25,
    "p_stride1_s2": 0.25,
    "problem_size": None,
}


def evaluate_grid(mapping, *, cache_lines, num_banks, t_m, ways=1, mvl=64,
                  blocking_factor, reuse_factor, p_ds,
                  p_stride1_s1=0.25, p_stride1_s2=0.25,
                  s1="random", s2="random", problem_size=None,
                  footprint_mode="simple", line_size=1,
                  loop_overhead=10, strip_overhead=15,
                  start_base=30) -> dict[str, np.ndarray]:
    """Score a broadcast grid of design x workload points.

    All array arguments broadcast together; the returned dict maps
    metric names to arrays of the broadcast shape.  On top of the
    timing/miss-ratio outputs of :func:`batched.cc_outputs_batch` this
    adds the two optimizer axes:

    ``bandwidth``
        expected effective memory bandwidth of the bank array
        (fraction of one word per cycle), Oed-Lange form.
    ``area_words``
        storage cost proxy, ``cache_lines * line_size`` — the paper's
        cost axis is line count, scaled by an optional word-per-line
        factor.
    """
    out = batched.cc_outputs_batch(
        mapping, cache_lines=cache_lines, num_banks=num_banks, t_m=t_m,
        ways=ways, mvl=mvl, blocking_factor=blocking_factor,
        reuse_factor=reuse_factor, p_ds=p_ds,
        p_stride1_s1=p_stride1_s1, p_stride1_s2=p_stride1_s2,
        s1=s1, s2=s2, problem_size=problem_size,
        footprint_mode=footprint_mode, loop_overhead=loop_overhead,
        strip_overhead=strip_overhead, start_base=start_base)
    shape = out["cycles_per_result"].shape
    bandwidth = np.broadcast_to(
        batched.expected_effective_bandwidth_batch(
            num_banks, t_m, p_stride1=p_stride1_s1), shape).copy()
    area = np.broadcast_to(
        np.asarray(cache_lines, dtype=np.int64)
        * np.asarray(line_size, dtype=np.int64), shape).copy()
    out["bandwidth"] = bandwidth
    out["area_words"] = area
    return out


def canonical_point(point: Mapping[str, Any]) -> dict[str, Any]:
    """Validate one ``vcm_batch`` point and fill serve-query defaults.

    Returns a plain dict with exactly the :data:`POINT_DEFAULTS` keys —
    the canonical form the serve layer digests, so permuted or
    duplicated points normalise to identical batch members.
    """
    unknown = set(point) - set(POINT_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown vcm_batch point keys: {sorted(unknown)}")
    merged = {**POINT_DEFAULTS, **dict(point)}
    if merged["mapping"] not in batched.MAPPINGS:
        raise ValueError(f"mapping must be one of {sorted(batched.MAPPINGS)},"
                         f" got {merged['mapping']!r}")
    for key in ("cache_lines", "banks", "t_m", "ways", "blocking_factor"):
        value = merged[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"{key} must be a positive int, got {value!r}")
    for key in ("reuse_factor", "p_ds", "p_stride1_s1", "p_stride1_s2"):
        value = merged[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{key} must be a number, got {value!r}")
        merged[key] = float(value)
    for key in ("s1", "s2"):
        value = merged[key]
        ok = (value is None or value == "random"
              or (isinstance(value, int) and not isinstance(value, bool)))
        if not ok:
            raise ValueError(f"{key} must be 'random', an int stride or "
                             f"null, got {value!r}")
    size = merged["problem_size"]
    if size is not None and (not isinstance(size, int)
                             or isinstance(size, bool) or size < 1):
        raise ValueError(f"problem_size must be a positive int or null, "
                         f"got {size!r}")
    return {key: merged[key] for key in POINT_DEFAULTS}


def _stride_kind(spec) -> str:
    if spec is None:
        return "none"
    if isinstance(spec, str):
        return spec
    return "fixed"


def evaluate_points(points: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Score a heterogeneous list of VCM points in few vectorised calls.

    Points are grouped by the attributes that select different code
    paths (mapping, stride-spec kind, bounded vs. unbounded problem
    size); everything numeric within a group rides one batched call.
    Each returned dict is a superset of the scalar ``vcm_query``
    result for the same parameters.
    """
    canon = [canonical_point(p) for p in points]
    groups: dict[tuple, list[int]] = {}
    for i, p in enumerate(canon):
        key = (p["mapping"], _stride_kind(p["s1"]), _stride_kind(p["s2"]),
               p["problem_size"] is None)
        groups.setdefault(key, []).append(i)

    results: list[dict | None] = [None] * len(canon)
    for (mapping, k1, k2, unbounded), idx in groups.items():
        member = [canon[i] for i in idx]

        def _arr(key, dtype=np.int64):
            return np.array([p[key] for p in member], dtype=dtype)

        s1 = _arr("s1") if k1 == "fixed" else (None if k1 == "none"
                                               else "random")
        s2 = _arr("s2") if k2 == "fixed" else (None if k2 == "none"
                                               else "random")
        out = evaluate_grid(
            mapping,
            cache_lines=_arr("cache_lines"), num_banks=_arr("banks"),
            t_m=_arr("t_m"), ways=_arr("ways"),
            blocking_factor=_arr("blocking_factor"),
            reuse_factor=_arr("reuse_factor", float),
            p_ds=_arr("p_ds", float),
            p_stride1_s1=_arr("p_stride1_s1", float),
            p_stride1_s2=_arr("p_stride1_s2", float),
            s1=s1, s2=s2,
            problem_size=None if unbounded else _arr("problem_size"))
        for j, i in enumerate(idx):
            p = canon[i]
            results[i] = {
                "mapping": p["mapping"],
                "t_m": p["t_m"],
                "banks": p["banks"],
                "cache_lines": p["cache_lines"],
                "ways": p["ways"],
                "blocking_factor": p["blocking_factor"],
                "reuse_factor": p["reuse_factor"],
                "cycles_per_result": float(out["cycles_per_result"][j]),
                "element_time": float(out["element_time"][j]),
                "initial_block_time": float(out["initial_block_time"][j]),
                "cached_block_time": float(out["cached_block_time"][j]),
                "mm_cycles_per_result":
                    float(out["mm_cycles_per_result"][j]),
                "miss_ratio": float(out["miss_ratio"][j]),
                "hit_ratio": float(out["hit_ratio"][j]),
                "bandwidth": float(out["bandwidth"][j]),
                "area_words": int(out["area_words"][j]),
            }
    return results  # type: ignore[return-value]


def apply_constraints(metrics: Mapping[str, np.ndarray], *,
                      max_area_words=None, max_banks=None, max_t_m=None,
                      min_bandwidth=None, max_miss_ratio=None,
                      max_cycles_per_result=None,
                      num_banks=None, t_m=None) -> np.ndarray:
    """Boolean feasibility mask over an :func:`evaluate_grid` result.

    ``num_banks`` / ``t_m`` are the grid axes themselves (needed for the
    bank-budget and latency constraints, which bound inputs rather than
    outputs); pass the same values handed to :func:`evaluate_grid`.
    """
    # metrics that are independent of an axis may carry it collapsed;
    # the mask spans the full broadcast grid
    shape = np.broadcast_shapes(*(np.shape(v) for v in metrics.values()))
    mask = np.ones(shape, dtype=bool)
    if max_area_words is not None:
        mask &= metrics["area_words"] <= max_area_words
    if max_banks is not None:
        if num_banks is None:
            raise ValueError("max_banks needs the num_banks grid axis")
        mask &= np.broadcast_to(np.asarray(num_banks), shape) <= max_banks
    if max_t_m is not None:
        if t_m is None:
            raise ValueError("max_t_m needs the t_m grid axis")
        mask &= np.broadcast_to(np.asarray(t_m), shape) <= max_t_m
    if min_bandwidth is not None:
        mask &= metrics["bandwidth"] >= min_bandwidth
    if max_miss_ratio is not None:
        mask &= metrics["miss_ratio"] <= max_miss_ratio
    if max_cycles_per_result is not None:
        mask &= metrics["cycles_per_result"] <= max_cycles_per_result
    return mask


def pareto_front(*objectives, minimise=None) -> np.ndarray:
    """Indices of the non-dominated points over minimised objectives.

    Each objective is a flat array (all the same length); ``minimise``
    is an optional per-objective bool sequence (default: minimise all —
    negate an objective to maximise it).  Returns ascending indices of
    the Pareto-optimal points.  Complexity is ``O(n * |front|)`` with a
    vectorised inner dominance test, which is fast for the post-
    constraint candidate counts the optimizer feeds it.
    """
    cols = [np.asarray(o, dtype=float).ravel() for o in objectives]
    if not cols:
        raise ValueError("pareto_front needs at least one objective")
    n = cols[0].shape[0]
    if any(c.shape[0] != n for c in cols):
        raise ValueError("objectives must have equal lengths")
    if minimise is not None:
        if len(minimise) != len(cols):
            raise ValueError("minimise must match the objective count")
        cols = [c if flag else -c for c, flag in zip(cols, minimise)]
    pts = np.stack(cols, axis=1)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Ascending lexicographic order: a point can only be dominated by an
    # earlier kept point, so one pass suffices.
    order = np.lexsort(pts.T[::-1])
    kept = np.empty_like(pts)
    kept_count = 0
    keep_mask = np.zeros(n, dtype=bool)
    for pos in order:
        p = pts[pos]
        if kept_count:
            front = kept[:kept_count]
            dominated = np.any(np.all(front <= p, axis=1)
                               & np.any(front < p, axis=1))
            if dominated:
                continue
        kept[kept_count] = p
        kept_count += 1
        keep_mask[pos] = True
    return np.nonzero(keep_mask)[0]
