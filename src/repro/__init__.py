"""repro — a full reproduction of "A Novel Cache Design for Vector
Processing" (Qing Yang and Liping Wu, ISCA 1992).

The paper proposes the **prime-mapped cache**: a direct-mapped cache with a
Mersenne-prime number of lines (``2^c - 1``), which makes vector accesses
of almost any stride conflict-free while index generation stays a single
``c``-bit end-around-carry addition off the critical path.

Package map (bottom-up):

* :mod:`repro.core` — Mersenne arithmetic and the Figure-1 address
  datapath.
* :mod:`repro.cache` — direct / set-associative / fully-associative /
  prime-mapped cache models with three-C miss classification.
* :mod:`repro.memory` — interleaved banks, interleave schemes, buses.
* :mod:`repro.machine` — executable MM-model and CC-model machines.
* :mod:`repro.analytical` — the paper's Section-3/4 equations.
* :mod:`repro.trace` — vector access-pattern generators and replay.
* :mod:`repro.workloads` — traced blocked matmul / LU / FFT / SAXPY.
* :mod:`repro.experiments` — per-figure reproduction and claim checks.

Quickstart::

    from repro import PrimeMappedCache, DirectMappedCache
    from repro.trace import strided, replay

    trace = strided(base=0, stride=8, length=8191, sweeps=2)
    print(replay(trace, PrimeMappedCache(c=13)).hit_ratio)     # ~0.5
    print(replay(trace, DirectMappedCache(num_lines=8192)).hit_ratio)  # 0.0
"""

from repro.analytical import (
    VCM,
    BlockedFFTModel,
    DirectMappedModel,
    FFTShape,
    MachineConfig,
    MMModel,
    PrimeMappedModel,
)
from repro.cache import (
    DirectMappedCache,
    FullyAssociativeCache,
    PrimeMappedCache,
    SetAssociativeCache,
)
from repro.core import AddressGenerator, AddressLayout, MersenneModulus
from repro.machine import CCMachine, MMMachine, VCMDriver

__version__ = "1.0.0"

__all__ = [
    "AddressGenerator",
    "AddressLayout",
    "BlockedFFTModel",
    "CCMachine",
    "DirectMappedCache",
    "DirectMappedModel",
    "FFTShape",
    "FullyAssociativeCache",
    "MMMachine",
    "MMModel",
    "MachineConfig",
    "MersenneModulus",
    "PrimeMappedCache",
    "PrimeMappedModel",
    "SetAssociativeCache",
    "VCM",
    "VCMDriver",
    "__version__",
]
