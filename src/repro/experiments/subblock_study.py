"""The Section-4 sub-block study: conflict-free blocking at utilisation ~1.

For a range of matrix leading dimensions ``P``, pick the paper's maximal
conflict-free sub-block for the prime cache, verify by enumeration that it
really is conflict-free, and measure what happens when the *same* block
shape is used with a power-of-two (direct-mapped) cache of comparable
size.  The punchline the paper states — "conflict free access is possible
to the submatrix even with the cache utilization approaching 1", which is
"either impossible or prohibitively costly" with a power-of-two modulus —
falls out as a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.subblock import (
    count_subblock_conflicts,
    max_conflict_free_block,
)

__all__ = ["SubblockRow", "subblock_study"]


@dataclass(frozen=True)
class SubblockRow:
    """One leading dimension's outcome.

    Attributes:
        leading_dimension: the matrix's ``P``.
        b1 / b2: the paper's maximal conflict-free block for the prime cache.
        prime_utilization: ``b1*b2 / (2^c - 1)``.
        prime_conflicts: enumerated collisions in the prime cache (0 expected).
        direct_conflicts: collisions of the same ``b1 x b2`` block in the
            power-of-two cache of ``2^c`` lines.
    """

    leading_dimension: int
    b1: int
    b2: int
    prime_utilization: float
    prime_conflicts: int
    direct_conflicts: int


def subblock_study(
    leading_dimensions=None, *, c: int = 7
) -> list[SubblockRow]:
    """Run the study for a set of leading dimensions.

    Args:
        leading_dimensions: matrix ``P`` values; defaults to a spread of
            generic, power-of-two-unfriendly and pathological cases.
        c: Mersenne exponent; prime cache has ``2^c - 1`` lines, the
            direct-mapped comparison ``2^c``.
    """
    prime_lines = (1 << c) - 1
    direct_lines = 1 << c
    if leading_dimensions is None:
        leading_dimensions = [100, 129, 200, 256, 300, 384, 500, 640, 1000,
                              1024, 1300]
    rows = []
    for p in leading_dimensions:
        choice = max_conflict_free_block(p, prime_lines)
        if choice.b1 == 0:
            rows.append(SubblockRow(p, 0, 0, 0.0, 0, 0))
            continue
        prime_conflicts = count_subblock_conflicts(
            p, choice.b1, choice.b2, prime_lines
        )
        direct_conflicts = count_subblock_conflicts(
            p, choice.b1, choice.b2, direct_lines
        )
        rows.append(
            SubblockRow(
                p, choice.b1, choice.b2, choice.utilization,
                prime_conflicts, direct_conflicts,
            )
        )
    return rows
