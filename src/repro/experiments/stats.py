"""Small statistics helpers for seed-averaged simulation measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Mean and spread of one measured quantity over seeds.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=1; 0.0 for a single sample).
        count: number of samples.
        ci95_half_width: half-width of a normal-approximation 95%
            confidence interval, ``1.96 * std / sqrt(n)``.
    """

    mean: float
    std: float
    count: int

    @property
    def ci95_half_width(self) -> float:
        if self.count < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.count)

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two 95% intervals overlap (a cheap equivalence test)."""
        return (
            abs(self.mean - other.mean)
            <= self.ci95_half_width + other.ci95_half_width
        )


def summarize(samples) -> Summary:
    """Summarise an iterable of numeric samples."""
    values = [float(v) for v in samples]
    if not values:
        raise ValueError("summarize needs at least one sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(mean, 0.0, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Summary(mean, math.sqrt(variance), n)
