"""One-command reproduction report.

``write_report`` regenerates the paper's figures, runs the claim checks,
the sub-block study and (optionally) the slower simulation-backed
experiments, and writes a self-contained Markdown report — the same
content EXPERIMENTS.md is built from, reproducible by any user via
``python -m repro report``.

Every section renderer accepts precomputed results, so the orchestrated
``report`` job (see :mod:`repro.orchestrate.jobs`) assembles the report
from its dependencies' cached outputs via :func:`report_from_inputs`
instead of recomputing each figure inline.
"""

from __future__ import annotations

import io

from repro.experiments.checks import check_figure
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.render import render_figure, render_table
from repro.experiments.subblock_study import subblock_study

__all__ = ["build_report", "report_from_inputs", "write_report"]

_FIGURE_ORDER = ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                 "fig10", "fig11a", "fig11b"]


def _figures_section(out: io.StringIO, figures) -> tuple[int, int]:
    passed = total = 0
    for figure_id in _FIGURE_ORDER:
        result = figures[figure_id]
        out.write(f"## {figure_id}\n\n```\n{render_figure(result)}\n```\n\n")
        out.write("| claim | verdict | measured |\n|---|---|---|\n")
        for check in check_figure(result):
            total += 1
            passed += check.passed
            verdict = "PASS" if check.passed else "FAIL"
            out.write(f"| {check.claim} | {verdict} | {check.detail} |\n")
        out.write("\n")
    return passed, total


def _subblock_section(out: io.StringIO, rows) -> None:
    out.write("## Sub-block study (Section 4)\n\n```\n")
    out.write(render_table(
        ["P", "b1", "b2", "prime util", "prime conflicts",
         "direct conflicts"],
        [[r.leading_dimension, r.b1, r.b2, r.prime_utilization,
          r.prime_conflicts, r.direct_conflicts] for r in rows],
    ))
    out.write("\n```\n\n")


def _extension_section(out: io.StringIO, extensions) -> None:
    out.write("## Extension figures (the paper's prose arguments, "
              "plotted)\n\n")
    for figure_id in sorted(extensions):
        out.write(f"```\n{render_figure(extensions[figure_id])}\n```\n\n")


def _validation_section(out: io.StringIO, points) -> None:
    out.write("## Analytical model vs cycle-level simulation\n\n```\n")
    out.write(render_table(
        ["model", "t_m", "B", "predicted", "simulated", "rel err"],
        [[p.model, p.t_m, p.block, p.predicted, p.measured,
          p.relative_error] for p in points],
    ))
    out.write("\n```\n\n")


def _assemble(figures, subblock_rows, extensions, validation) -> str:
    out = io.StringIO()
    out.write("# Reproduction report — prime-mapped cache (Yang & Wu, "
              "ISCA 1992)\n\n")
    passed, total = _figures_section(out, figures)
    _subblock_section(out, subblock_rows)
    _extension_section(out, extensions)
    if validation is not None:
        _validation_section(out, validation)
    out.write(f"**Paper claims reproduced: {passed}/{total}**\n")
    return out.getvalue()


def build_report(*, include_simulation: bool = False, seeds: int = 3) -> str:
    """Assemble the report text, computing every section inline.

    Args:
        include_simulation: also run the (slow) machine-simulation
            cross-validation grid.
        seeds: seeds for the simulation grid.
    """
    from repro.experiments.extension_figures import ALL_EXTENSION_FIGURES

    validation = None
    if include_simulation:
        from repro.experiments.validation import validation_grid

        validation = validation_grid(t_m_values=(8, 16), blocks=(512, 2048),
                                     seeds=seeds)
    return _assemble(
        {figure_id: ALL_FIGURES[figure_id]() for figure_id in _FIGURE_ORDER},
        subblock_study(),
        {figure_id: fn() for figure_id, fn
         in ALL_EXTENSION_FIGURES.items()},
        validation,
    )


def report_from_inputs(inputs: dict) -> str:
    """Assemble the report from orchestrated dependency results.

    ``inputs`` is keyed by job name: the nine ``figN`` analytical
    figures, the four ``ext-*`` extension figures, ``subblock``, and
    optionally ``validation`` (scheduled by ``repro report --simulate``).
    """
    return _assemble(
        {figure_id: inputs[figure_id] for figure_id in _FIGURE_ORDER},
        inputs["subblock"],
        {name: result for name, result in inputs.items()
         if name.startswith("ext-")},
        inputs.get("validation"),
    )


def write_report(path, *, include_simulation: bool = False,
                 seeds: int = 3) -> str:
    """Build the report and write it to ``path``; returns the text."""
    text = build_report(include_simulation=include_simulation, seeds=seeds)
    with open(path, "w") as handle:
        handle.write(text)
    return text
