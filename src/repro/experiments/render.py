"""Plain-text rendering of regenerated figures.

The paper's figures are line plots; on a terminal we render each as a
fixed-width table (one row per x value, one column per curve), which is
also the format EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult

__all__ = ["render_figure", "render_table"]


def render_table(headers: list[str], rows: list[list]) -> str:
    """A fixed-width table with a header rule."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(values):
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_figure(result: FigureResult) -> str:
    """Render one figure as a titled table."""
    headers = [result.x_label] + [s.label for s in result.series]
    rows = []
    for i, x in enumerate(result.x_values):
        rows.append([x] + [s.values[i] for s in result.series])
    title = f"{result.figure_id}: {result.title}"
    body = render_table(headers, rows)
    notes = f"({result.y_label}; {result.notes})" if result.notes else ""
    return "\n".join(filter(None, [title, notes, body]))
