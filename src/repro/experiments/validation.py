"""Cross-validation of the analytical model against the machine simulator.

The paper's results rest entirely on the analytical equations; the
executable machines of :mod:`repro.machine` let us check that the
equations predict what a cycle-level simulation of the same timing rules
measures.  This module runs matched (analytical, simulated) pairs over a
parameter grid and reports relative errors — the quantity tabulated in
EXPERIMENTS.md and asserted (loosely) in the tests.  The simulated leg
runs on the vectorised strip-level timing engine (batched cache probes
via ``access_many`` plus closed-form bank/bus accounting, bit-for-bit
identical to the per-element reference loop and an order of magnitude
faster), which keeps the grid cheap enough to widen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.base import MachineConfig
from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
from repro.analytical.mm import MMModel
from repro.analytical.vcm import VCM
from repro.cache import DirectMappedCache, PrimeMappedCache
from repro.machine import CCMachine, MMMachine, VCMDriver

__all__ = ["ValidationPoint", "validate_point", "validation_grid"]


@dataclass(frozen=True)
class ValidationPoint:
    """One matched analytical-vs-simulated measurement.

    Attributes:
        model: "mm", "direct" or "prime".
        t_m / block / p_ds: the grid coordinates.
        predicted: analytical cycles per result.
        measured: simulated cycles per result (seed-averaged).
        relative_error: ``|measured - predicted| / predicted``.
    """

    model: str
    t_m: int
    block: int
    p_ds: float
    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.predicted) / self.predicted


def _make_machine(model: str, config: MachineConfig):
    if model == "mm":
        return MMMachine(config)
    if model == "direct":
        return CCMachine(config, DirectMappedCache(num_lines=config.cache_lines,
                                                   classify_misses=False))
    if model == "prime":
        c = (config.cache_lines + 1).bit_length() - 1
        return CCMachine(config, PrimeMappedCache(c=c, classify_misses=False))
    raise ValueError(f"unknown model {model!r}")


def _make_analytical(model: str, config: MachineConfig):
    if model == "mm":
        return MMModel(config)
    if model == "direct":
        return DirectMappedModel(config)
    if model == "prime":
        return PrimeMappedModel(config)
    raise ValueError(f"unknown model {model!r}")


def validate_point(
    model: str,
    t_m: int,
    block: int,
    *,
    p_ds: float = 0.0,
    reuse: int = 8,
    num_banks: int = 32,
    cache_lines: int | None = None,
    seeds: int = 6,
    blocks: int = 4,
) -> ValidationPoint:
    """Measure one grid point: analytical prediction vs seed-averaged sim.

    ``blocks`` independent blocks are driven per seed so the stride
    distribution is actually sampled rather than drawn once.
    """
    if cache_lines is None:
        cache_lines = 8191 if model == "prime" else 8192
    config = MachineConfig(num_banks=num_banks, memory_access_time=t_m,
                           cache_lines=cache_lines)
    vcm = VCM(
        blocking_factor=block,
        reuse_factor=reuse,
        p_ds=p_ds,
        s2=None if p_ds == 0 else "random",
        p_stride1_s1=0.25,
        p_stride1_s2=0.25,
    )
    predicted = _make_analytical(model, config).cycles_per_result(vcm)
    total = 0.0
    for seed in range(seeds):
        machine = _make_machine(model, config)
        driven = VCMDriver(machine, seed=seed).run(
            vcm, problem_size=block * blocks
        )
        total += driven.cycles_per_result
    return ValidationPoint(model, t_m, block, p_ds, predicted, total / seeds)


def validation_grid(
    *,
    models: tuple[str, ...] = ("mm", "direct", "prime"),
    t_m_values: tuple[int, ...] = (8, 16, 32),
    blocks: tuple[int, ...] = (512, 2048),
    seeds: int = 6,
) -> list[ValidationPoint]:
    """The standard cross-validation grid (single-stream workloads)."""
    points = []
    for model in models:
        for t_m in t_m_values:
            for block in blocks:
                points.append(
                    validate_point(model, t_m, block, seeds=seeds)
                )
    return points
