"""Extension figures: the paper's *prose* arguments, plotted.

Several of the paper's key arguments are stated in text but never given a
figure — associativity won't help (Section 2.1), miss ratio misleads
(Section 3.1), interleaving alone needs absurd bank counts (intro, via
Bailey), and utilisation must stay low on a conventional cache (Section
3.4's closing observation).  Each function here turns one of those
arguments into a data series in the same :class:`FigureResult` shape as
the reproduced figures, so they render, check and report identically.
"""

from __future__ import annotations

from repro.analytical.bandwidth import expected_effective_bandwidth
from repro.analytical.base import MachineConfig
from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
from repro.analytical.missratio import demonstrate_miss_ratio_fallacy
from repro.analytical.mm import MMModel
from repro.analytical.set_assoc import SetAssociativeModel
from repro.analytical.vcm import VCM
from repro.experiments.figures import DEFAULTS, FigureResult, FigureSeries

__all__ = [
    "extension_associativity",
    "extension_missratio",
    "extension_bandwidth",
    "extension_utilization",
    "ALL_EXTENSION_FIGURES",
]


def _config(t_m: int = 32, banks: int = 64, cache_lines: int = 8192):
    return MachineConfig(num_banks=banks, memory_access_time=t_m,
                         cache_lines=cache_lines)


def extension_associativity(block_values=None) -> FigureResult:
    """Section 2.1 plotted: k-way curves collapse onto each other while
    the prime-mapped curve sits below them all."""
    block_values = list(block_values or [512, 1024, 2048, 4096, 8192])
    curves: dict[str, list[float]] = {
        "1-way (cyclic)": [], "2-way LRU": [], "8-way LRU": [],
        "CC-prime": [],
    }
    for block in block_values:
        vcm = VCM(blocking_factor=block, reuse_factor=block,
                  p_ds=DEFAULTS["p_ds"])
        curves["1-way (cyclic)"].append(
            SetAssociativeModel(_config(), ways=1).cycles_per_result(vcm))
        curves["2-way LRU"].append(
            SetAssociativeModel(_config(), ways=2).cycles_per_result(vcm))
        curves["8-way LRU"].append(
            SetAssociativeModel(_config(), ways=8).cycles_per_result(vcm))
        curves["CC-prime"].append(
            PrimeMappedModel(_config(cache_lines=8191))
            .cycles_per_result(vcm))
    return FigureResult(
        "ext-assoc",
        "Associativity cannot remove strided conflicts; prime mapping can",
        "blocking factor B", block_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, C=8192 (prime 8191), cyclic-LRU counting",
    )


def extension_missratio(block_values=None) -> FigureResult:
    """Section 3.1 plotted: the direct-mapped hit ratio stays healthy
    while its cycles cross above the cacheless machine."""
    block_values = list(block_values or [1024, 2048, 4096, 6144, 8192])
    hit_ratio, cc_cycles, mm_cycles = [], [], []
    for block in block_values:
        vcm = VCM(blocking_factor=block, reuse_factor=block,
                  p_ds=DEFAULTS["p_ds"])
        cfg = _config(t_m=16, banks=32)
        view = demonstrate_miss_ratio_fallacy(
            DirectMappedModel(cfg), MMModel(cfg), vcm)
        hit_ratio.append(view.hit_ratio)
        cc_cycles.append(view.cc_cycles)
        mm_cycles.append(view.mm_cycles)
    return FigureResult(
        "ext-missratio",
        "A healthy hit ratio does not mean the cache is winning",
        "blocking factor B", block_values,
        "hit ratio / clock cycles per result",
        [FigureSeries("direct hit ratio", hit_ratio),
         FigureSeries("direct cycles/result", cc_cycles),
         FigureSeries("MM cycles/result", mm_cycles)],
        notes="M=32, t_m=16, R=B, P_ds=0.1",
    )


def extension_bandwidth(bank_values=None) -> FigureResult:
    """The introduction's interleaving argument plotted: expected
    effective bandwidth of a single random-stride stream vs bank count."""
    bank_values = list(bank_values or [16, 32, 64, 128, 256, 512, 1024])
    series = {f"t_m={t_m}": [] for t_m in (8, 16, 32)}
    for banks in bank_values:
        for t_m in (8, 16, 32):
            cfg = MachineConfig(num_banks=banks, memory_access_time=t_m)
            series[f"t_m={t_m}"].append(
                expected_effective_bandwidth(cfg, DEFAULTS["p_stride1"]))
    return FigureResult(
        "ext-bandwidth",
        "Interleaving alone saturates slowly in the bank count",
        "memory banks M", bank_values,
        "expected effective bandwidth (elements/cycle)",
        [FigureSeries(k, v) for k, v in series.items()],
        notes="single stream, P_stride1=0.25",
    )


def extension_utilization(utilization_values=None) -> FigureResult:
    """Section 3.4's closing observation plotted: cost of using a given
    fraction of each cache (B = fraction * C, R = B)."""
    utilization_values = list(utilization_values or
                              [0.05, 0.1, 0.25, 0.5, 0.75, 1.0])
    curves: dict[str, list[float]] = {"CC-direct": [], "CC-prime": []}
    for fraction in utilization_values:
        direct_cfg = _config()
        prime_cfg = _config(cache_lines=8191)
        for label, model, lines in (
            ("CC-direct", DirectMappedModel(direct_cfg), 8192),
            ("CC-prime", PrimeMappedModel(prime_cfg), 8191),
        ):
            block = max(1, int(fraction * lines))
            vcm = VCM(blocking_factor=block, reuse_factor=block,
                      p_ds=DEFAULTS["p_ds"])
            curves[label].append(model.cycles_per_result(vcm))
    return FigureResult(
        "ext-utilization",
        "The cost of actually using the cache you paid for",
        "cache fraction used (B / C)", utilization_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, R=B, P_ds=0.1",
    )


#: Registry mirroring :data:`repro.experiments.figures.ALL_FIGURES`.
ALL_EXTENSION_FIGURES = {
    "ext-assoc": extension_associativity,
    "ext-missratio": extension_missratio,
    "ext-bandwidth": extension_bandwidth,
    "ext-utilization": extension_utilization,
}
