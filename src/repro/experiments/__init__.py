"""Reproduction harness: per-figure sweeps, paper-claim shape checks,
analytical-vs-simulation cross-validation, the sub-block study, and
plain-text rendering."""

from repro.experiments.checks import ClaimCheck, check_all_figures, check_figure
from repro.experiments.figures import (
    ALL_FIGURES,
    DEFAULTS,
    FigureResult,
    FigureSeries,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11a,
    figure11b,
)
from repro.experiments.extension_figures import (
    ALL_EXTENSION_FIGURES,
    extension_associativity,
    extension_bandwidth,
    extension_missratio,
    extension_utilization,
)
from repro.experiments.render import render_figure, render_table
from repro.experiments.report import build_report, write_report
from repro.experiments.simulated_figures import (
    figure7_simulated,
    figure8_simulated,
)
from repro.experiments.stats import Summary, summarize
from repro.experiments.subblock_study import SubblockRow, subblock_study
from repro.experiments.validation import (
    ValidationPoint,
    validate_point,
    validation_grid,
)

__all__ = [
    "ALL_EXTENSION_FIGURES",
    "ALL_FIGURES",
    "ClaimCheck",
    "DEFAULTS",
    "FigureResult",
    "FigureSeries",
    "SubblockRow",
    "Summary",
    "ValidationPoint",
    "build_report",
    "check_all_figures",
    "extension_associativity",
    "extension_bandwidth",
    "extension_missratio",
    "extension_utilization",
    "check_figure",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure7_simulated",
    "figure8",
    "figure8_simulated",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "render_figure",
    "render_table",
    "subblock_study",
    "summarize",
    "validate_point",
    "validation_grid",
    "write_report",
]
