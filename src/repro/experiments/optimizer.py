"""Design-space search over the vectorised analytical surrogate.

This is ROADMAP item 5: sweep the surrogate over a grid of
(mapping, cache size, associativity, banks, ``t_m``) x workload points,
filter by hardware constraints (area proportional to line count, bank
budget, memory-latency budget, minimum bank bandwidth), extract the
Pareto front over (miss ratio, bandwidth, cost), and re-score the
front's best picks on the cycle-level machines so the surrogate's
predictions are *verified*, not just fast.

Both stages are plain orchestrator job functions — ``optimize-search``
and ``optimize-verify`` in the registry, with ``repro optimize`` as the
front-end — so results are content-addressed and shared like every
other experiment.

Verification tolerances (documented, asserted by ``verify_front``):
the analytical equations are steady-state closed forms while the
machines simulate cold starts and sampled stride draws, so the accepted
relative error is per mapping — 0.35 for ``prime``, 0.8 for ``direct``
(its all-or-nothing conflict model is the paper's own coarsest
approximation), and 1.0 for ``assoc`` (the cyclic-LRU analytical model
vs. a true-LRU simulated cache).  These match the bounds the
long-standing ``validation`` grid tests assert.

The verification is a real check, not a rubber stamp: picks outside
the closed forms' accuracy envelope — e.g. a tiny cache blocked at
full capacity while a second stream evicts it — measure far above
prediction and fail their tolerance, and ``repro optimize`` exits
nonzero rather than report an unverified front.
"""

from __future__ import annotations

import numpy as np

from repro.analytical import surrogate

__all__ = [
    "DEFAULT_GRID",
    "VERIFY_TOLERANCES",
    "optimize_search",
    "render_optimize",
    "verify_design_point",
    "verify_front",
]

#: Default design grid: every combination per mapping.  ``c`` is the
#: Mersenne exponent — ``2^c`` lines for direct/assoc, ``2^c - 1`` for
#: prime — so the organisations compete at matched capacities.
DEFAULT_GRID = {
    "mappings": ("direct", "prime", "assoc"),
    "c_values": (8, 9, 10, 11, 12, 13),
    "ways_values": (2, 4),
    "banks_values": (16, 32, 64, 128),
    "t_m_values": (8, 16, 32, 64),
    "block_fractions": (0.125, 0.25, 0.5, 0.75, 1.0),
}

#: Accepted |measured - predicted| / predicted per mapping (see module
#: docstring for why they differ).
VERIFY_TOLERANCES = {"direct": 0.8, "prime": 0.35, "assoc": 1.0}

#: Mappings the surrogate can score: the batched closed forms and the
#: area model exist only for these.  The zoo's hashed/bicameral/two-level
#: organisations are simulator-only — race them through the ``zoo-*``
#: sweep jobs (docs/cache-zoo.md), not the analytical search.
MODELED_MAPPINGS = ("direct", "prime", "assoc")


#: Exponents for which ``2^c - 1`` is a Mersenne prime — the only
#: line counts the prime-mapped hardware (and simulator) accepts.
MERSENNE_EXPONENTS = (2, 3, 5, 7, 13, 17, 19, 31)


def _mapping_axes(mapping, c_values, ways_values):
    """(cache_lines, ways) feasible pairs for one mapping."""
    pairs = []
    for c in c_values:
        if mapping == "prime":
            if c in MERSENNE_EXPONENTS:
                pairs.append(((1 << c) - 1, 1))
        elif mapping == "direct":
            pairs.append((1 << c, 1))
        else:
            for ways in ways_values:
                if (1 << c) // ways >= 1:
                    pairs.append((1 << c, ways))
    return pairs


def optimize_search(*, mappings=DEFAULT_GRID["mappings"],
                    c_values=DEFAULT_GRID["c_values"],
                    ways_values=DEFAULT_GRID["ways_values"],
                    banks_values=DEFAULT_GRID["banks_values"],
                    t_m_values=DEFAULT_GRID["t_m_values"],
                    block_fractions=DEFAULT_GRID["block_fractions"],
                    p_ds=0.1, p_stride1=0.25,
                    max_area_words=None, max_banks=None, max_t_m=None,
                    min_bandwidth=None, top_k=8,
                    allow_unmodeled=False) -> dict:
    """Score the design grid, filter, and extract the Pareto front.

    Returns a JSON-safe dict: grid/constraint echo, point counts, and
    ``front`` — the non-dominated designs over minimising
    (miss ratio, -bandwidth, area), ranked by predicted cycles per
    result (the scalarisation ``verify_front`` re-scores).

    Only :data:`MODELED_MAPPINGS` have surrogate closed forms and an
    area model.  Other mappings (``hashed``, ``bicameral``) raise a
    ``ValueError`` unless ``allow_unmodeled=True``, in which case they
    are dropped from the grid and echoed under the ``unmodeled`` key so
    callers can see the search was partial.
    """
    unmodeled = tuple(m for m in mappings if m not in MODELED_MAPPINGS)
    if unmodeled and not allow_unmodeled:
        raise ValueError(
            f"no surrogate/area model for mapping(s) {unmodeled}; the "
            f"analytical search covers {MODELED_MAPPINGS} only. "
            "Simulator-only organisations are compared by the zoo-* "
            "sweep jobs (docs/cache-zoo.md); pass --allow-unmodeled to "
            "search the modeled mappings anyway.")
    mappings = tuple(m for m in mappings if m in MODELED_MAPPINGS)
    records = []
    evaluated = 0
    for mapping in mappings:
        pairs = _mapping_axes(mapping, c_values, ways_values)
        if not pairs:
            continue
        lines = np.array([p[0] for p in pairs])[:, None, None, None]
        ways = np.array([p[1] for p in pairs])[:, None, None, None]
        banks = np.array(banks_values)[None, :, None, None]
        t_m = np.array(t_m_values)[None, None, :, None]
        frac = np.array(block_fractions)[None, None, None, :]
        block = np.maximum(1, (lines * frac).astype(np.int64))
        reuse = np.maximum(1.0, block.astype(float))
        grid = surrogate.evaluate_grid(
            mapping, cache_lines=lines, num_banks=banks, t_m=t_m,
            ways=ways, blocking_factor=block, reuse_factor=reuse,
            p_ds=p_ds, p_stride1_s1=p_stride1, p_stride1_s2=p_stride1)
        mask = surrogate.apply_constraints(
            grid, max_area_words=max_area_words, max_banks=max_banks,
            max_t_m=max_t_m, min_bandwidth=min_bandwidth,
            num_banks=banks, t_m=t_m)
        shape = mask.shape
        evaluated += int(np.prod(shape))
        idx = np.nonzero(mask)
        if not idx[0].size:
            continue
        full = {key: np.broadcast_to(value, shape)[idx]
                for key, value in (
                    ("cache_lines", lines), ("ways", ways),
                    ("banks", banks), ("t_m", t_m),
                    ("blocking_factor", block), ("reuse_factor", reuse))}
        for key in ("cycles_per_result", "miss_ratio", "bandwidth",
                    "area_words", "mm_cycles_per_result"):
            # metrics that don't depend on an axis (miss ratio is
            # bank-independent) come back with that axis collapsed
            full[key] = np.broadcast_to(grid[key], shape)[idx]
        for i in range(idx[0].size):
            records.append({
                "mapping": mapping,
                "cache_lines": int(full["cache_lines"][i]),
                "ways": int(full["ways"][i]),
                "banks": int(full["banks"][i]),
                "t_m": int(full["t_m"][i]),
                "blocking_factor": int(full["blocking_factor"][i]),
                "reuse_factor": float(full["reuse_factor"][i]),
                "cycles_per_result": float(full["cycles_per_result"][i]),
                "mm_cycles_per_result":
                    float(full["mm_cycles_per_result"][i]),
                "miss_ratio": float(full["miss_ratio"][i]),
                "bandwidth": float(full["bandwidth"][i]),
                "area_words": int(full["area_words"][i]),
            })

    if records:
        front_idx = surrogate.pareto_front(
            [r["miss_ratio"] for r in records],
            [-r["bandwidth"] for r in records],
            [r["area_words"] for r in records])
        front = sorted((records[i] for i in front_idx),
                       key=lambda r: r["cycles_per_result"])
    else:
        front = []
    return {
        "workload": {"p_ds": p_ds, "p_stride1": p_stride1},
        "constraints": {"max_area_words": max_area_words,
                        "max_banks": max_banks, "max_t_m": max_t_m,
                        "min_bandwidth": min_bandwidth},
        "evaluated": evaluated,
        "feasible": len(records),
        "front_size": len(front),
        "front": front[:max(top_k, 1) * 4],
        "top": front[:top_k],
        "unmodeled": list(unmodeled),
    }


def verify_design_point(point: dict, *, p_ds=0.1, p_stride1=0.25,
                        seeds=3, blocks=4) -> dict:
    """Re-score one surrogate pick on the cycle-level CC machine.

    Drives ``seeds`` independent simulations of ``blocks`` blocks each
    and compares the seed-averaged cycles per result against the
    surrogate's prediction under the mapping's documented tolerance.
    """
    from repro.analytical.base import MachineConfig
    from repro.analytical.vcm import VCM
    from repro.cache import (
        DirectMappedCache,
        PrimeMappedCache,
        SetAssociativeCache,
    )
    from repro.machine import CCMachine, VCMDriver

    mapping = point["mapping"]
    config = MachineConfig(num_banks=point["banks"],
                           memory_access_time=point["t_m"],
                           cache_lines=point["cache_lines"])
    vcm = VCM(blocking_factor=point["blocking_factor"],
              reuse_factor=point["reuse_factor"], p_ds=p_ds,
              s2=None if p_ds == 0 else "random",
              p_stride1_s1=p_stride1, p_stride1_s2=p_stride1)

    def make_cache():
        if mapping == "direct":
            return DirectMappedCache(num_lines=point["cache_lines"],
                                     classify_misses=False)
        if mapping == "prime":
            c = (point["cache_lines"] + 1).bit_length() - 1
            return PrimeMappedCache(c=c, classify_misses=False)
        return SetAssociativeCache(
            num_sets=point["cache_lines"] // point["ways"],
            num_ways=point["ways"], classify_misses=False)

    [prediction] = surrogate.evaluate_points([{
        "mapping": mapping, "cache_lines": point["cache_lines"],
        "ways": point["ways"], "banks": point["banks"],
        "t_m": point["t_m"], "blocking_factor": point["blocking_factor"],
        "reuse_factor": point["reuse_factor"], "p_ds": p_ds,
        "p_stride1_s1": p_stride1, "p_stride1_s2": p_stride1,
        "s2": None if p_ds == 0 else "random",
    }])
    predicted = prediction["cycles_per_result"]
    total = 0.0
    for seed in range(seeds):
        machine = CCMachine(config, make_cache())
        driven = VCMDriver(machine, seed=seed).run(
            vcm, problem_size=point["blocking_factor"] * blocks)
        total += driven.cycles_per_result
    measured = total / seeds
    tolerance = VERIFY_TOLERANCES[mapping]
    error = abs(measured - predicted) / predicted
    return {
        **{key: point[key] for key in ("mapping", "cache_lines", "ways",
                                       "banks", "t_m", "blocking_factor")},
        "predicted": predicted,
        "measured": measured,
        "relative_error": error,
        "tolerance": tolerance,
        "ok": error <= tolerance,
    }


def verify_front(inputs: dict | None = None, *, search=None, top_k=3,
                 seeds=3, blocks=4) -> dict:
    """Verify the top-K Pareto picks of an ``optimize_search`` result.

    As an orchestrator job this receives the search result through
    ``inputs`` (dep name ``optimize-search``); called directly, pass
    ``search=``.
    """
    if search is None:
        if not inputs:
            raise ValueError("verify_front needs an optimize-search input")
        search = next(iter(inputs.values()))
    workload = search["workload"]
    checks = [verify_design_point(point, p_ds=workload["p_ds"],
                                  p_stride1=workload["p_stride1"],
                                  seeds=seeds, blocks=blocks)
              for point in search["top"][:top_k]]
    return {
        "workload": workload,
        "verified": len(checks),
        "ok": all(c["ok"] for c in checks),
        "checks": checks,
    }


def render_optimize(search: dict, verification: dict | None = None) -> str:
    """Human-readable summary of a search (+ optional verification)."""
    lines = [
        f"design-space search: {search['evaluated']} points evaluated, "
        f"{search['feasible']} feasible, Pareto front "
        f"{search['front_size']}",
    ]
    if search.get("unmodeled"):
        lines.append(
            "WARNING: skipped unmodeled mapping(s) "
            + ", ".join(search["unmodeled"])
            + " — no surrogate/area model; see the zoo-* sweep jobs")
    constraints = {key: value
                   for key, value in search["constraints"].items()
                   if value is not None}
    if constraints:
        lines.append("constraints: " + ", ".join(
            f"{key}={value}" for key, value in sorted(constraints.items())))
    header = (f"  {'mapping':7s} {'lines':>6s} {'ways':>4s} {'banks':>5s} "
              f"{'t_m':>4s} {'B':>6s} {'cyc/res':>8s} {'miss':>7s} "
              f"{'bw':>5s} {'area':>6s}")
    lines.append(header)
    for point in search["top"]:
        lines.append(
            f"  {point['mapping']:7s} {point['cache_lines']:6d} "
            f"{point['ways']:4d} {point['banks']:5d} {point['t_m']:4d} "
            f"{point['blocking_factor']:6d} "
            f"{point['cycles_per_result']:8.2f} "
            f"{point['miss_ratio']:7.4f} {point['bandwidth']:5.2f} "
            f"{point['area_words']:6d}")
    if verification is not None:
        lines.append(f"simulator verification (top {verification['verified']}"
                     f"): {'ok' if verification['ok'] else 'FAILED'}")
        for check in verification["checks"]:
            lines.append(
                f"  {check['mapping']:7s} lines={check['cache_lines']} "
                f"predicted {check['predicted']:.2f} measured "
                f"{check['measured']:.2f} rel err "
                f"{check['relative_error']:.3f} "
                f"(tol {check['tolerance']:.2f}) "
                f"{'ok' if check['ok'] else 'FAIL'}")
    return "\n".join(lines)
