"""Per-figure reproduction of the paper's evaluation (Figures 4–11).

Each ``figure*`` function regenerates one figure's data: it sweeps the
parameter the paper sweeps, evaluates the same machine models, and returns
a :class:`FigureResult` whose series are the figure's curves.  Fixed
parameters follow the paper's captions/text; where the paper leaves a knob
unstated (notably ``P_ds``), the value was calibrated once against the
stated crossovers (see EXPERIMENTS.md) and is recorded in
:data:`DEFAULTS`.

The paper labels two different plots "Figure 11"; we call the row/column
study :func:`figure11a` and the FFT study :func:`figure11b`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytical.base import MachineConfig
from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
from repro.analytical.fft import BlockedFFTModel, FFTShape
from repro.analytical.mm import MMModel
from repro.analytical.vcm import VCM

__all__ = [
    "DEFAULTS",
    "FigureSeries",
    "FigureResult",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "ALL_FIGURES",
]

#: Shared evaluation constants.  ``p_ds = 0.1`` is the calibrated value:
#: with it the model reproduces the paper's stated Figure-4 crossovers
#: (t_m ~ 20 at B = 4K, ~7 at B = 2K) and Figure-7 ratios (prime ~3x
#: direct, ~5x MM at t_m = M = 64 with B = 2K).
DEFAULTS = {
    "p_stride1": 0.25,
    "p_ds": 0.1,
    "direct_lines": 8192,   # the paper's 8K-word vector cache
    "prime_lines": 8191,    # 2^13 - 1, the matching Mersenne prime
}


@dataclass(frozen=True)
class FigureSeries:
    """One curve: a label and y-values aligned with the figure's x-values."""

    label: str
    values: list[float]


@dataclass
class FigureResult:
    """One regenerated figure.

    Attributes:
        figure_id: "fig4" ... "fig11b".
        title: what the paper's figure shows.
        x_label / x_values: the swept parameter.
        y_label: the measure (clock cycles per result / per point).
        series: the curves.
        notes: fixed parameters and calibration remarks.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: list
    y_label: str
    series: list[FigureSeries] = field(default_factory=list)
    notes: str = ""

    def series_by_label(self, label: str) -> FigureSeries:
        """Fetch one curve by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")


def _models(t_m: int, num_banks: int):
    """The three machine models at one memory speed."""
    direct_cfg = MachineConfig(
        num_banks=num_banks, memory_access_time=t_m,
        cache_lines=DEFAULTS["direct_lines"],
    )
    prime_cfg = direct_cfg.with_(cache_lines=DEFAULTS["prime_lines"])
    return MMModel(direct_cfg), DirectMappedModel(direct_cfg), PrimeMappedModel(prime_cfg)


def _vcm(block: int, reuse: float | None = None, **overrides) -> VCM:
    params = dict(
        blocking_factor=block,
        reuse_factor=reuse if reuse is not None else block,
        p_ds=DEFAULTS["p_ds"],
        p_stride1_s1=DEFAULTS["p_stride1"],
        p_stride1_s2=DEFAULTS["p_stride1"],
    )
    params.update(overrides)
    return VCM(**params)


def figure4(t_m_values=None) -> FigureResult:
    """Cycles/result vs memory access time: MM vs direct-mapped CC at
    blocking factors 2K and 4K (M = 32 banks, C = 8K, R = B)."""
    t_m_values = list(t_m_values or range(4, 65, 4))
    curves = {"MM-model B=2K": [], "CC-direct B=2K": [],
              "MM-model B=4K": [], "CC-direct B=4K": []}
    for t_m in t_m_values:
        mm, direct, _ = _models(t_m, num_banks=32)
        for block, tag in ((2048, "2K"), (4096, "4K")):
            vcm = _vcm(block)
            curves[f"MM-model B={tag}"].append(mm.cycles_per_result(vcm))
            curves[f"CC-direct B={tag}"].append(direct.cycles_per_result(vcm))
    return FigureResult(
        "fig4",
        "Adding a direct-mapped vector cache pays off only past a memory-speed crossover",
        "memory access time t_m (cycles)", t_m_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=32, C=8K words, R=B, P_ds=0.1, P_stride1=0.25",
    )


def figure5(reuse_values=None) -> FigureResult:
    """Cycles/result vs reuse factor R at B = 1K (t_m = 8 and 16)."""
    reuse_values = list(reuse_values or [1, 2, 4, 8, 16, 32, 64])
    curves = {"MM-model t_m=8": [], "CC-direct t_m=8": [],
              "MM-model t_m=16": [], "CC-direct t_m=16": []}
    for reuse in reuse_values:
        for t_m in (8, 16):
            mm, direct, _ = _models(t_m, num_banks=32)
            vcm = _vcm(1024, reuse=reuse)
            curves[f"MM-model t_m={t_m}"].append(mm.cycles_per_result(vcm))
            curves[f"CC-direct t_m={t_m}"].append(direct.cycles_per_result(vcm))
    return FigureResult(
        "fig5",
        "The vector cache wins whenever data is reused more than once",
        "reuse factor R", reuse_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=32, C=8K, B=1K, P_ds=0.1, P_stride1=0.25",
    )


def figure6(block_values=None) -> FigureResult:
    """Cycles/result vs blocking factor B for t_m = 16 and 32 (M = 32)."""
    block_values = list(block_values or [256, 512, 1024, 2048, 3072, 4096,
                                         5120, 6144, 7168, 8192])
    curves = {"MM-model t_m=16": [], "CC-direct t_m=16": [],
              "MM-model t_m=32": [], "CC-direct t_m=32": []}
    for block in block_values:
        for t_m in (16, 32):
            mm, direct, _ = _models(t_m, num_banks=32)
            vcm = _vcm(block)
            curves[f"MM-model t_m={t_m}"].append(mm.cycles_per_result(vcm))
            curves[f"CC-direct t_m={t_m}"].append(direct.cycles_per_result(vcm))
    return FigureResult(
        "fig6",
        "Direct-mapped cache performance collapses as the blocking factor grows",
        "blocking factor B (elements)", block_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=32, C=8K, R=B, P_ds=0.1, P_stride1=0.25",
    )


def figure7(t_m_values=None) -> FigureResult:
    """Cycles/result vs memory time for all three models (M = 64, B = 2K):
    the prime-mapped cache stays nearly flat."""
    t_m_values = list(t_m_values or range(4, 65, 4))
    curves = {"MM-model": [], "CC-direct": [], "CC-prime": []}
    for t_m in t_m_values:
        mm, direct, prime = _models(t_m, num_banks=64)
        vcm = _vcm(2048)
        curves["MM-model"].append(mm.cycles_per_result(vcm))
        curves["CC-direct"].append(direct.cycles_per_result(vcm))
        curves["CC-prime"].append(prime.cycles_per_result(vcm))
    return FigureResult(
        "fig7",
        "Prime-mapped cache is insensitive to the processor-memory speed gap",
        "memory access time t_m (cycles)", t_m_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, C=8K(8191 prime), B=2K, R=B, P_ds=0.1, P_stride1=0.25",
    )


def figure8(block_values=None) -> FigureResult:
    """Cycles/result vs blocking factor with t_m = M/2 = 32 (M = 64):
    direct crosses over the MM-model near 3K, prime stays flat."""
    block_values = list(block_values or [256, 512, 1024, 2048, 3072, 4096,
                                         5120, 6144, 7168, 8191])
    curves = {"MM-model": [], "CC-direct": [], "CC-prime": []}
    for block in block_values:
        mm, direct, prime = _models(32, num_banks=64)
        vcm = _vcm(block)
        curves["MM-model"].append(mm.cycles_per_result(vcm))
        curves["CC-direct"].append(direct.cycles_per_result(vcm))
        curves["CC-prime"].append(prime.cycles_per_result(vcm))
    return FigureResult(
        "fig8",
        "Prime-mapped cache is insensitive to the blocking factor",
        "blocking factor B (elements)", block_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, C=8K(8191 prime), R=B, P_ds=0.1, P_stride1=0.25",
    )


def figure9(p1_values=None) -> FigureResult:
    """Cycles/result vs unit-stride probability: the mapping schemes
    converge as P_stride1 -> 1 and tie exactly there."""
    p1_values = list(p1_values or [i / 10 for i in range(11)])
    curves = {"CC-direct": [], "CC-prime": []}
    for p1 in p1_values:
        _, direct, prime = _models(32, num_banks=64)
        vcm = _vcm(2048, p_stride1_s1=p1, p_stride1_s2=p1)
        curves["CC-direct"].append(direct.cycles_per_result(vcm))
        curves["CC-prime"].append(prime.cycles_per_result(vcm))
    return FigureResult(
        "fig9",
        "Unit-stride probability closes the gap between the mapping schemes",
        "P_stride1", p1_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, B=2K, R=B, P_ds=0.1",
    )


def figure10(p_ds_values=None) -> FigureResult:
    """Cycles/result vs double-stream fraction: cross-interference grows
    with P_ds, prime-mapped stays ahead throughout."""
    p_ds_values = list(p_ds_values or [i / 10 for i in range(10)])
    curves = {"MM-model": [], "CC-direct": [], "CC-prime": []}
    for p_ds in p_ds_values:
        mm, direct, prime = _models(32, num_banks=64)
        vcm = _vcm(2048, p_ds=p_ds, s2=None if p_ds == 0 else "random")
        curves["MM-model"].append(mm.cycles_per_result(vcm))
        curves["CC-direct"].append(direct.cycles_per_result(vcm))
        curves["CC-prime"].append(prime.cycles_per_result(vcm))
    return FigureResult(
        "fig10",
        "Double-stream accesses raise cross-interference for every model",
        "P_ds (double-stream fraction)", p_ds_values,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, B=2K, R=B, P_stride1=0.25",
    )


def figure11a(row_fractions=None) -> FigureResult:
    """Row/column matrix walks: the direct-mapped cache degrades as the row
    (stride-P) share grows; the prime cache is flat.

    Modelled as a single-stream VCM whose stride is unit (a column) with
    probability ``1 - f`` and random non-unit (a row of a random-sized
    matrix) with probability ``f``.
    """
    row_fractions = list(row_fractions or [i / 10 for i in range(11)])
    curves = {"CC-direct": [], "CC-prime": []}
    for f in row_fractions:
        _, direct, prime = _models(32, num_banks=64)
        vcm = _vcm(2048, p_ds=0.0, s2=None, p_stride1_s1=1.0 - f)
        curves["CC-direct"].append(direct.cycles_per_result(vcm))
        curves["CC-prime"].append(prime.cycles_per_result(vcm))
    return FigureResult(
        "fig11a",
        "Row-major walks hurt the direct-mapped cache; the prime cache is flat",
        "fraction of row (stride-P) accesses", row_fractions,
        "clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes="M=64, t_m=32, B=2K, R=B, single-stream",
    )


def figure11b(b2_exponents=None, n: int = 1 << 16) -> FigureResult:
    """Blocked FFT: cycles per point vs B2 for a fixed N = B1 * B2."""
    b2_exponents = list(b2_exponents or range(2, 13))
    x_values = [1 << e for e in b2_exponents]
    curves = {"CC-direct": [], "CC-prime": []}
    for b2 in x_values:
        _, direct, prime = _models(32, num_banks=64)
        shape = FFTShape(b1=n // b2, b2=b2)
        curves["CC-direct"].append(BlockedFFTModel(direct).cycles_per_point(shape))
        curves["CC-prime"].append(BlockedFFTModel(prime).cycles_per_point(shape))
    return FigureResult(
        "fig11b",
        "Blocked FFT: the prime-mapped cache wins for every decomposition",
        "B2 (column length)", x_values,
        "clock cycles per point",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes=f"N={n}, M=64, t_m=32, C=8K(8191 prime), P_ds=0",
    )


#: Registry used by the benchmark harness and EXPERIMENTS.md generation.
ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11a": figure11a,
    "fig11b": figure11b,
}
