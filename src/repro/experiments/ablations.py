"""The nine ablation studies, as importable pure functions.

Each study was born as a standalone ``benchmarks/bench_ablation_*.py``
script; the compute halves now live here so the experiment orchestrator
(:mod:`repro.orchestrate`) can schedule, cache and parallelise them like
every other experiment, while the benches keep their claim assertions
and simply call these functions.  Every function returns an
:class:`AblationResult` whose ``rows`` are exactly the rows the old
script produced, so the rendered ``results/ablation_*.txt`` artifacts
are byte-identical whichever path regenerates them.

The studies (design-space context for the paper's mapping attack):

* **associativity** — k-way LRU vs prime mapping (Section 2.1);
* **interleave** — prime-number *memory* interleaving (Budnik–Kuck/BSP);
* **linesize** — line size under strided access (Section 2.2);
* **mappings** — bit-slice / XOR / column-associative / Mersenne index;
* **prefetch** — Fu & Patel prefetching vs conflict removal;
* **prime-linesize** — does prime mapping survive multi-word lines?;
* **replacement** — LRU/FIFO/random/Belady under serial sweeps;
* **sensitivity** — MVL and overhead constants perturbed;
* **victim** — a Jouppi victim buffer vs vector-length eviction runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table

__all__ = [
    "ALL_ABLATIONS",
    "AblationResult",
    "ablation_associativity",
    "ablation_interleave",
    "ablation_linesize",
    "ablation_mappings",
    "ablation_prefetch",
    "ablation_prime_linesize",
    "ablation_replacement",
    "ablation_sensitivity",
    "ablation_victim",
    "render_ablation",
]


@dataclass(frozen=True)
class AblationResult:
    """One study's table: a name, column headers, and data rows."""

    name: str
    headers: list[str]
    rows: list[list]

    def row(self, *prefix) -> list:
        """The first row whose leading cells equal ``prefix``."""
        for row in self.rows:
            if tuple(row[:len(prefix)]) == prefix:
                return row
        raise KeyError(f"{self.name}: no row starting with {prefix!r}")


def render_ablation(result: AblationResult) -> str:
    """The fixed-width table the benches write to ``results/``."""
    return render_table(result.headers, result.rows)


# ----------------------------------------------------------------------
# associativity (Section 2.1)

ASSOC_LINES = 8192
ASSOC_PRIME_C = 13
ASSOC_VECTOR_LENGTH = 2048
#: gcd with 8192: 1, 1, 8, 32, 64, 256 -> per-set load 0.25..64 elements
ASSOC_STRIDES = [1, 7, 8, 32, 64, 256]


def ablation_associativity() -> AblationResult:
    """Replay a stride spectrum through k-way caches and the prime cache."""
    from repro.cache import (
        DirectMappedCache,
        FullyAssociativeCache,
        PrimeMappedCache,
        SetAssociativeCache,
    )
    from repro.trace.patterns import strided
    from repro.trace.records import Trace
    from repro.trace.replay import replay

    trace = Trace(description="stride spectrum")
    for i, stride in enumerate(ASSOC_STRIDES):
        trace.extend(strided(i * (1 << 20), stride, ASSOC_VECTOR_LENGTH,
                             sweeps=2))
    contenders = [
        ("direct 8192", DirectMappedCache(num_lines=ASSOC_LINES)),
        ("2-way LRU", SetAssociativeCache(num_sets=ASSOC_LINES // 2,
                                          num_ways=2)),
        ("4-way LRU", SetAssociativeCache(num_sets=ASSOC_LINES // 4,
                                          num_ways=4)),
        ("8-way LRU", SetAssociativeCache(num_sets=ASSOC_LINES // 8,
                                          num_ways=8)),
        ("fully assoc", FullyAssociativeCache(num_lines=ASSOC_LINES)),
        ("prime 8191", PrimeMappedCache(c=ASSOC_PRIME_C)),
    ]
    rows = []
    for label, cache in contenders:
        result = replay(trace, cache, t_m=16)
        rows.append([label, result.hit_ratio,
                     result.stats.conflict_misses, result.stall_cycles])
    return AblationResult(
        "ablation_associativity",
        ["organisation", "hit ratio", "conflict misses", "stall cycles"],
        rows)


# ----------------------------------------------------------------------
# prime-number memory interleaving (the BSP ancestor)

INTERLEAVE_T_M = 8
INTERLEAVE_BANKS_POW2 = 16
INTERLEAVE_BANKS_PRIME = 17


def ablation_interleave() -> AblationResult:
    """Bank stalls of a stride-16 sweep under each interleave scheme."""
    from repro.analytical.base import MachineConfig
    from repro.machine import MMMachine, VectorLoad
    from repro.memory import (
        InterleavedMemory,
        LowOrderInterleave,
        PrimeInterleave,
        SkewedInterleave,
    )

    schemes = [
        ("low-order 16", LowOrderInterleave(INTERLEAVE_BANKS_POW2)),
        ("skewed 16", SkewedInterleave(INTERLEAVE_BANKS_POW2)),
        ("prime 17", PrimeInterleave(INTERLEAVE_BANKS_PRIME)),
    ]
    config = MachineConfig(num_banks=INTERLEAVE_BANKS_POW2,
                           memory_access_time=INTERLEAVE_T_M)
    rows = []
    for label, scheme in schemes:
        memory = InterleavedMemory(scheme.num_banks, INTERLEAVE_T_M, scheme)
        machine = MMMachine(config, memory=memory)
        report = machine.execute(
            [VectorLoad(base=0, stride=INTERLEAVE_BANKS_POW2, length=256)]
        )
        rows.append([label, report.bank_stall_cycles, report.cycles])
    return AblationResult(
        "ablation_interleave",
        ["interleave", "bank stall cycles", "total cycles"],
        rows)


# ----------------------------------------------------------------------
# line size under strided access (Section 2.2)

LINESIZE_CAPACITY_WORDS = 4096
LINESIZE_SIZES = [1, 2, 4, 8, 16]


def ablation_linesize() -> AblationResult:
    """Hit ratios per line size for unit-stride and long-stride sweeps."""
    from repro.cache import DirectMappedCache
    from repro.trace.patterns import strided
    from repro.trace.replay import replay

    rows = []
    for line_size in LINESIZE_SIZES:
        cache = DirectMappedCache(
            num_lines=LINESIZE_CAPACITY_WORDS // line_size,
            line_size_words=line_size)
        unit = replay(strided(0, 1, 2048, sweeps=2), cache, t_m=16)
        cache = DirectMappedCache(
            num_lines=LINESIZE_CAPACITY_WORDS // line_size,
            line_size_words=line_size)
        # stride 33: coprime with the line count, so misses are pure
        # pollution/capacity effects rather than mapping conflicts
        long_stride = replay(strided(0, 33, 2048, sweeps=2), cache, t_m=16)
        rows.append([line_size, unit.hit_ratio, long_stride.hit_ratio])
    return AblationResult(
        "ablation_linesize",
        ["line size (words)", "hit ratio stride 1", "hit ratio stride 33"],
        rows)


# ----------------------------------------------------------------------
# the index-mapping design space

MAPPINGS_LINES = 128
MAPPINGS_PRIME_C = 7


def _mapping_traces():
    from repro.trace.patterns import fft_butterflies, strided, subblock

    return [
        ("stride-16 x3", strided(0, 16, 100, sweeps=3)),
        # stride 2^(2c): beyond the XOR fold's reach
        ("stride-16384 x3", strided(0, 1 << 14, 100, sweeps=3)),
        # the paper's tailored conflict-free shape for P=384 at C=127:
        # rho = min(384 mod 127, 127 - 384 mod 127) = 3 -> (3, 42)
        ("subblock P=384 x2", subblock(384, 3, 42, sweeps=2)),
        ("FFT n=64 (fits)", fft_butterflies(64)),
    ]


def ablation_mappings() -> AblationResult:
    """Bit-slice vs XOR vs column-associative vs Mersenne index."""
    from repro.cache import (
        ColumnAssociativeCache,
        DirectMappedCache,
        PrimeMappedCache,
        XorMappedCache,
    )
    from repro.trace.replay import replay

    contenders = [
        ("direct", lambda: DirectMappedCache(num_lines=MAPPINGS_LINES)),
        ("xor-hash", lambda: XorMappedCache(num_lines=MAPPINGS_LINES)),
        ("column-assoc",
         lambda: ColumnAssociativeCache(num_lines=MAPPINGS_LINES)),
        ("prime", lambda: PrimeMappedCache(c=MAPPINGS_PRIME_C)),
    ]
    rows = []
    for trace_label, trace in _mapping_traces():
        for label, build in contenders:
            result = replay(trace, build(), t_m=16)
            rows.append([trace_label, label, result.hit_ratio,
                         result.stats.conflict_misses])
    return AblationResult(
        "ablation_mappings",
        ["trace", "mapping", "hit ratio", "conflict misses"],
        rows)


# ----------------------------------------------------------------------
# prefetching vs prime mapping (Fu & Patel)

PREFETCH_DIRECT_LINES = 128
PREFETCH_PRIME_C = 7


def ablation_prefetch() -> AblationResult:
    """{mapping} x {prefetch scheme} on folding, mixed and FFT traces."""
    from repro.cache import (
        DirectMappedCache,
        PrefetchingCache,
        PrimeMappedCache,
        SequentialPrefetcher,
        StridePrefetcher,
    )
    from repro.trace.patterns import fft_butterflies, strided
    from repro.trace.records import Trace
    from repro.trace.replay import replay

    contenders = [
        ("direct",
         lambda: DirectMappedCache(num_lines=PREFETCH_DIRECT_LINES)),
        ("direct+seq", lambda: PrefetchingCache(
            DirectMappedCache(num_lines=PREFETCH_DIRECT_LINES),
            SequentialPrefetcher(2))),
        ("direct+stride", lambda: PrefetchingCache(
            DirectMappedCache(num_lines=PREFETCH_DIRECT_LINES),
            StridePrefetcher(2))),
        ("prime", lambda: PrimeMappedCache(c=PREFETCH_PRIME_C)),
        ("prime+stride", lambda: PrefetchingCache(
            PrimeMappedCache(c=PREFETCH_PRIME_C), StridePrefetcher(2))),
    ]
    mixed = Trace(description="mixed strides")
    for i, stride in enumerate([1, 7, 16, 64]):
        mixed.extend(strided(i << 20, stride, 100, sweeps=2))
    traces = [("stride-64 x3 sweeps", strided(0, 64, 100, sweeps=3)),
              ("mixed strides", mixed),
              ("FFT n=256", fft_butterflies(256))]
    rows = []
    for trace_label, trace in traces:
        for label, build in contenders:
            cache = build()
            result = replay(trace, cache, t_m=16)
            traffic = (cache.memory_traffic
                       if isinstance(cache, PrefetchingCache)
                       else cache.stats.misses)
            rows.append([trace_label, label, result.hit_ratio,
                         result.stats.conflict_misses, traffic])
    return AblationResult(
        "ablation_prefetch",
        ["trace", "cache", "hit ratio", "conflict misses", "memory traffic"],
        rows)


# ----------------------------------------------------------------------
# prime mapping with multi-word lines

PRIME_LINESIZE_C = 7
PRIME_LINESIZE_DIRECT_LINES = 128
PRIME_LINESIZE_VECTOR_LENGTH = 100
PRIME_LINESIZE_SWEEPS = 2


def ablation_prime_linesize() -> AblationResult:
    """Direct vs prime across line sizes for unit / power-of-two strides."""
    from repro.cache import DirectMappedCache, PrimeMappedCache
    from repro.trace.patterns import strided
    from repro.trace.replay import replay

    rows = []
    for line_size in (1, 2, 4, 8):
        for stride, label in ((1, "unit"), (64, "power-of-two")):
            trace = strided(0, stride, PRIME_LINESIZE_VECTOR_LENGTH,
                            sweeps=PRIME_LINESIZE_SWEEPS)
            direct = replay(
                trace,
                DirectMappedCache(num_lines=PRIME_LINESIZE_DIRECT_LINES,
                                  line_size_words=line_size),
                t_m=16,
            )
            prime = replay(
                trace,
                PrimeMappedCache(c=PRIME_LINESIZE_C,
                                 line_size_words=line_size),
                t_m=16,
            )
            rows.append([line_size, label, direct.hit_ratio,
                         prime.hit_ratio, direct.stats.conflict_misses,
                         prime.stats.conflict_misses])
    return AblationResult(
        "ablation_prime_linesize",
        ["line size", "stride", "direct hits", "prime hits",
         "direct conflicts", "prime conflicts"],
        rows)


# ----------------------------------------------------------------------
# replacement policy under serial sweeps (Section 2.1)

REPLACEMENT_CAPACITY = 64


def ablation_replacement() -> AblationResult:
    """LRU vs FIFO vs random vs Belady on cyclic and reuse patterns."""
    from repro.cache import FullyAssociativeCache
    from repro.cache.belady import simulate_opt
    from repro.trace.patterns import strided
    from repro.trace.records import Trace
    from repro.trace.replay import replay

    capacity = REPLACEMENT_CAPACITY
    over_capacity = strided(0, 1, capacity + 8, sweeps=4)
    # reuse-friendly: a hot vector re-read between one-shot streams
    friendly = Trace(description="hot/cold mix")
    for round_index in range(4):
        friendly.extend(strided(0, 1, capacity // 2, sweeps=1))        # hot
        friendly.extend(
            strided(10_000 + round_index * 1000, 1, capacity // 2)     # cold
        )
    rows = []
    for policy in ("lru", "fifo", "random"):
        cyclic = replay(
            over_capacity,
            FullyAssociativeCache(num_lines=capacity, policy=policy),
        )
        reuse = replay(
            friendly, FullyAssociativeCache(num_lines=capacity,
                                            policy=policy)
        )
        rows.append([policy, cyclic.hit_ratio, reuse.hit_ratio])
    rows.append([
        "opt (clairvoyant)",
        simulate_opt(over_capacity, total_lines=capacity).hit_ratio,
        simulate_opt(friendly, total_lines=capacity).hit_ratio,
    ])
    return AblationResult(
        "ablation_replacement",
        ["policy", "hit ratio (cyclic sweep)", "hit ratio (hot/cold reuse)"],
        rows)


# ----------------------------------------------------------------------
# sensitivity to the fixed model constants

SENSITIVITY_T_M = 32
SENSITIVITY_BANKS = 64


def _sensitivity_point(mvl, loop_overhead, strip_overhead, start_base):
    from repro.analytical.base import MachineConfig
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
    from repro.analytical.mm import MMModel
    from repro.analytical.vcm import VCM

    cfg = MachineConfig(
        num_banks=SENSITIVITY_BANKS, memory_access_time=SENSITIVITY_T_M,
        cache_lines=8192, mvl=mvl, loop_overhead=loop_overhead,
        strip_overhead=strip_overhead, start_base=start_base,
    )
    vcm = VCM(blocking_factor=2048, reuse_factor=2048, p_ds=0.1)
    mm = MMModel(cfg).cycles_per_result(vcm)
    direct = DirectMappedModel(cfg).cycles_per_result(vcm)
    prime = PrimeMappedModel(
        cfg.with_(cache_lines=8191)).cycles_per_result(vcm)
    return mm, direct, prime


def ablation_sensitivity() -> AblationResult:
    """The headline conclusion under perturbed MVL/overhead constants."""
    variants = [
        ("paper (MVL=64, 10/15/30)", 64, 10, 15, 30),
        ("short registers (MVL=16)", 16, 10, 15, 30),
        ("long registers (MVL=256)", 256, 10, 15, 30),
        ("double overheads", 64, 20, 30, 60),
        ("zero overheads", 64, 0, 0, 1),
    ]
    rows = []
    for label, mvl, loop, strip, start in variants:
        mm, direct, prime = _sensitivity_point(mvl, loop, strip, start)
        rows.append([label, mm, direct, prime, direct / prime, mm / prime])
    return AblationResult(
        "ablation_sensitivity",
        ["constants", "MM", "direct", "prime", "direct/prime", "MM/prime"],
        rows)


# ----------------------------------------------------------------------
# victim cache vs prime mapping

VICTIM_DIRECT_LINES = 128
VICTIM_PRIME_C = 7


def ablation_victim() -> AblationResult:
    """Jouppi victim buffers on ping-pong pairs vs strided eviction runs."""
    from repro.cache import DirectMappedCache, PrimeMappedCache, VictimCache
    from repro.trace.patterns import strided
    from repro.trace.records import Trace

    traces = [
        ("ping-pong pair",
         Trace.from_addresses([0, VICTIM_DIRECT_LINES] * 40,
                              description="ping-pong")),
        ("stride-16 x3 sweeps", strided(0, 16, 100, sweeps=3)),
    ]
    rows = []
    for trace_label, trace in traces:
        contenders = [
            ("direct", DirectMappedCache(num_lines=VICTIM_DIRECT_LINES)),
            ("direct+victim4", VictimCache(
                DirectMappedCache(num_lines=VICTIM_DIRECT_LINES),
                entries=4)),
            ("direct+victim16", VictimCache(
                DirectMappedCache(num_lines=VICTIM_DIRECT_LINES),
                entries=16)),
            ("prime", PrimeMappedCache(c=VICTIM_PRIME_C)),
        ]
        for label, cache in contenders:
            for access in trace:
                cache.access(access.address)
            to_memory = (cache.misses_costing_memory()
                         if isinstance(cache, VictimCache)
                         else cache.stats.misses)
            rows.append([trace_label, label, cache.stats.miss_ratio,
                         to_memory])
    return AblationResult(
        "ablation_victim",
        ["trace", "cache", "miss ratio", "lines fetched from memory"],
        rows)


#: Registry keyed by the ``results/`` artifact stem each study writes.
ALL_ABLATIONS = {
    "ablation_associativity": ablation_associativity,
    "ablation_interleave": ablation_interleave,
    "ablation_linesize": ablation_linesize,
    "ablation_mappings": ablation_mappings,
    "ablation_prefetch": ablation_prefetch,
    "ablation_prime_linesize": ablation_prime_linesize,
    "ablation_replacement": ablation_replacement,
    "ablation_sensitivity": ablation_sensitivity,
    "ablation_victim": ablation_victim,
}
