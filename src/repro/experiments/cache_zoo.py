"""The cache-organisation zoo: studies racing the paper's prime mapping
against organisations it never met.

Four orchestrated studies (jobs ``zoo-*`` in the registry, artifacts
``results/zoo_*.txt``, documented page-by-page in docs/cache-zoo.md):

* :func:`zoo_bicameral_vs_prime` — a split scalar/vector
  :class:`~repro.cache.bicameral.BicameralCache` vs the unified prime
  and direct caches on the figure-style strided reuse sweeps, with a
  hot scalar working set deliberately interleaved so scalar/vector
  interference is on the table.
* :func:`zoo_hashed_collision` — the analytical-vs-simulated study for
  :class:`~repro.cache.hashed.HashedIndexCache`: birthday-paradox
  closed forms against the exact placement law and against real
  double-sweep simulations, per set count and fill factor.
* :func:`zoo_hierarchy` — two-level L1/L2 hierarchies threaded through
  the CC machine: per-level hit accounting and composed miss penalties
  on reuse sweeps, vs single-level caches of either capacity.
* :func:`zoo_irregular` — the four irregular workloads (SpMV, hash
  join, BFS, mergesort) replayed through the zoo's organisations.

Every study returns an :class:`~repro.experiments.ablations.AblationResult`
table so the ablation renderer and result store machinery apply as-is.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ablations import AblationResult

__all__ = [
    "zoo_bicameral_vs_prime",
    "zoo_hashed_collision",
    "zoo_hierarchy",
    "zoo_irregular",
]


# ----------------------------------------------------------------------
# bicameral vs prime (arXiv 2407.15440 meets the 1992 design)

BICAMERAL_PRIME_C = 7          # vector half / unified caches: 127 lines
BICAMERAL_SCALAR_SETS = 32     # scalar half
BICAMERAL_VECTOR_BASE = 1 << 16
BICAMERAL_SCALAR_BASE = 0
BICAMERAL_SCALAR_HOT = 24      # hot scalar working set (words)


def _bicameral_trace(stride: int, length: int, sweeps: int):
    """A strided vector reuse sweep with a hot scalar set interleaved
    every fourth element — the scalar/vector interference mix a unified
    cache must absorb and a bicameral cache splits."""
    from repro.trace.records import Trace

    vector = BICAMERAL_VECTOR_BASE + np.arange(length, dtype=np.int64) \
        * stride
    scalar_slots = length // 4
    trace = Trace(description=f"bicameral mix stride {stride}")
    for sweep in range(sweeps):
        scalar = BICAMERAL_SCALAR_BASE + (
            (sweep * scalar_slots + np.arange(scalar_slots, dtype=np.int64))
            % BICAMERAL_SCALAR_HOT)
        block = np.empty(length + scalar_slots, dtype=np.int64)
        mask = np.zeros(length + scalar_slots, dtype=bool)
        mask[4::5] = True          # every fifth slot is a scalar access
        block[~mask] = vector
        block[mask] = scalar
        trace.append_block(block)
    return trace


def zoo_bicameral_vs_prime(strides=(1, 7, 8, 32, 64, 127, 128),
                           length: int = 96, sweeps: int = 3,
                           t_m: int = 16) -> AblationResult:
    """Race unified direct/prime caches against bicameral splits on
    strided reuse sweeps mixed with a hot scalar working set."""
    from repro.cache import (
        BicameralCache,
        DirectMappedCache,
        PrimeMappedCache,
    )
    from repro.trace.replay import replay

    def bicameral(mapping: str) -> BicameralCache:
        cache = BicameralCache(
            scalar_sets=BICAMERAL_SCALAR_SETS,
            vector_c=BICAMERAL_PRIME_C,
            vector_mapping=mapping,
        )
        span = max(strides) * length
        cache.mark_vector(BICAMERAL_VECTOR_BASE,
                          BICAMERAL_VECTOR_BASE + span + 1)
        return cache

    contenders = [
        ("direct", lambda: DirectMappedCache(
            num_lines=2 ** BICAMERAL_PRIME_C)),
        ("prime", lambda: PrimeMappedCache(c=BICAMERAL_PRIME_C)),
        ("bicameral-direct", lambda: bicameral("direct")),
        ("bicameral-prime", lambda: bicameral("prime")),
    ]
    rows = []
    for stride in strides:
        trace = _bicameral_trace(stride, length, sweeps)
        for label, build in contenders:
            result = replay(trace, build(), t_m=t_m)
            rows.append([stride, label, result.hit_ratio,
                         result.stats.conflict_misses,
                         result.stall_cycles])
    return AblationResult(
        "zoo_bicameral_vs_prime",
        ["stride", "organisation", "hit ratio", "conflict misses",
         "stall cycles"],
        rows)


# ----------------------------------------------------------------------
# hashed-index collisions: analytical vs simulated

def zoo_hashed_collision(set_counts=(16, 64, 256),
                         fills=(0.25, 0.5, 1.0, 1.5),
                         sim_seeds: int = 8,
                         law_seeds: int = 2048) -> AblationResult:
    """Birthday-paradox collision curves: the closed form, the exact
    placement law averaged over ``law_seeds``, and real double-sweep
    cache simulations averaged over ``sim_seeds``."""
    from repro.analytical.hashed import (
        expected_colliding_lines,
        mean_colliding_lines,
        second_sweep_misses,
    )

    rows = []
    for num_sets in set_counts:
        for fill in fills:
            num_lines = max(2, int(round(num_sets * fill)))
            expected = float(expected_colliding_lines(num_lines, num_sets))
            law_mean = mean_colliding_lines(num_lines, num_sets, law_seeds)
            sim_mean = float(np.mean([
                second_sweep_misses(num_lines, num_sets, seed)
                for seed in range(sim_seeds)
            ]))
            rows.append([num_sets, num_lines, expected, law_mean, sim_mean,
                         abs(law_mean - expected)])
    return AblationResult(
        "zoo_hashed_collision",
        ["sets", "lines", "expected collisions", "exact-law mean",
         "simulated mean", "|law - expected|"],
        rows)


# ----------------------------------------------------------------------
# L1/L2 hierarchies through the CC machine

HIERARCHY_L1_SETS = 16
HIERARCHY_L2_SETS = 256
HIERARCHY_L2_HIT_TIME = 4


def zoo_hierarchy(strides=(1, 5, 8), block: int = 96, reuse: int = 3,
                  num_banks: int = 8, t_m: int = 12) -> AblationResult:
    """Reuse sweeps through the CC machine: a two-level hierarchy vs
    single-level caches of L1 and L2 capacity, with per-level hit
    counts and the composed miss-penalty breakdown."""
    from repro.analytical.base import MachineConfig
    from repro.cache import DirectMappedCache, TwoLevelCache
    from repro.machine import CCMachine, VectorLoad

    config = MachineConfig(num_banks=num_banks, memory_access_time=t_m,
                           cache_lines=HIERARCHY_L2_SETS)
    contenders = [
        ("l1-only", lambda: DirectMappedCache(
            num_lines=HIERARCHY_L1_SETS, classify_misses=False)),
        ("l2-only", lambda: DirectMappedCache(
            num_lines=HIERARCHY_L2_SETS, classify_misses=False)),
        ("l1+l2", lambda: TwoLevelCache(
            l1_sets=HIERARCHY_L1_SETS, l2_sets=HIERARCHY_L2_SETS,
            l2_hit_time=HIERARCHY_L2_HIT_TIME, classify_misses=False)),
    ]
    rows = []
    for stride in strides:
        ops = [VectorLoad(base=0, stride=stride, length=block)]
        ops += [VectorLoad(base=0, stride=stride, length=block,
                           expect_cached=True)] * (reuse - 1)
        for label, build in contenders:
            machine = CCMachine(config, build())
            report = machine.execute(ops)
            rows.append([stride, label, report.cycles, report.cache_hits,
                         report.l2_hits, report.cache_misses,
                         report.miss_stall_cycles,
                         report.bank_stall_cycles])
    return AblationResult(
        "zoo_hierarchy",
        ["stride", "organisation", "cycles", "hits", "l2 hits", "misses",
         "miss stall", "bank stall"],
        rows)


# ----------------------------------------------------------------------
# irregular workloads across the zoo

def zoo_irregular(seed: int = 0, t_m: int = 16) -> AblationResult:
    """Replay the four irregular workloads through the zoo's single-level
    organisations (equal-ish capacity: 128 lines / c=7 / 128 hashed)."""
    from repro.cache import (
        DirectMappedCache,
        HashedIndexCache,
        PrimeMappedCache,
        SetAssociativeCache,
    )
    from repro.trace.replay import replay
    from repro.workloads import bfs, hash_join, mergesort, spmv_csr

    workloads = [
        ("spmv-csr", lambda: spmv_csr(seed=seed)[1]),
        ("hash-join", lambda: hash_join(seed=seed)[1]),
        ("bfs", lambda: bfs(seed=seed)[1]),
        ("mergesort", lambda: mergesort(seed=seed)[1]),
    ]
    contenders = [
        ("direct", lambda: DirectMappedCache(num_lines=128)),
        ("assoc-2w", lambda: SetAssociativeCache(num_sets=64, num_ways=2)),
        ("prime", lambda: PrimeMappedCache(c=7)),
        ("hashed", lambda: HashedIndexCache(num_sets=128, seed=seed + 1)),
    ]
    rows = []
    for wl_label, make_trace in workloads:
        trace = make_trace()
        for label, build in contenders:
            result = replay(trace, build(), t_m=t_m)
            rows.append([wl_label, label, result.hit_ratio,
                         result.stats.misses,
                         result.stats.conflict_misses,
                         result.stall_cycles])
    return AblationResult(
        "zoo_irregular",
        ["workload", "organisation", "hit ratio", "misses",
         "conflict misses", "stall cycles"],
        rows)
