"""Regenerate the key figures from the *executable* machines.

The paper's evaluation is purely analytical.  Because this reproduction
also has cycle-level MM/CC machine simulators, the headline figures can be
regenerated a second, independent way: synthesize the VCM workload with a
seeded RNG, run it on the machines, and plot the measured cycles per
result.  The curves will not coincide numerically with the closed forms
(the simulation samples the stride lottery; the equations take its
expectation), but the *shape* — the ordering of the three machines and
the flatness of the prime curve — must and does survive.

Runtime note: the machines run on the vectorised strip-level timing
engine (see ``docs/architecture.md``), which collapses each sweep to a
handful of closed-form batch calls — more than an order of magnitude
faster than the per-element reference loop.  That makes the *full-reuse*
workload (``R = B``, the paper's steady-state assumption) the default
here, with ``seeds=8`` per point; seed sampling can additionally fan out
over a process pool via ``workers=``.  The sweeps remain benchmark
targets rather than test-suite defaults, but no longer need truncated
reuse factors to finish.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.analytical.base import MachineConfig
from repro.analytical.vcm import VCM
from repro.cache import DirectMappedCache, PrimeMappedCache
from repro.experiments.figures import DEFAULTS, FigureResult, FigureSeries
from repro.experiments.stats import summarize
from repro.machine import CCMachine, MMMachine, VCMDriver

__all__ = [
    "CANONICAL_FIG7_SIMULATED",
    "CANONICAL_FIG8_SIMULATED",
    "figure7_simulated",
    "figure8_simulated",
]

#: The canonical regeneration parameters: the single parameterisation
#: both the benchmark harness and the ``repro sweep`` jobs use, so
#: ``results/fig7_simulated.txt`` / ``fig8_simulated.txt`` have exactly
#: one provenance (they used to be written under two parameterisations
#: depending on which path ran last).  fig8 runs blocking factors up to
#: the full cache at R = B, so its sample count is kept smaller.
CANONICAL_FIG7_SIMULATED = {"seeds": 2, "blocks": 4}
CANONICAL_FIG8_SIMULATED = {"seeds": 2, "blocks": 2}


def _direct_config(t_m: int, num_banks: int) -> MachineConfig:
    return MachineConfig(
        num_banks=num_banks, memory_access_time=t_m,
        cache_lines=DEFAULTS["direct_lines"],
    )


# module-level factories (not lambdas) so ``partial`` specialisations of
# them pickle cleanly into ProcessPoolExecutor workers
def _make_mm(t_m: int, num_banks: int) -> MMMachine:
    return MMMachine(_direct_config(t_m, num_banks))


def _make_cc_direct(t_m: int, num_banks: int) -> CCMachine:
    return CCMachine(
        _direct_config(t_m, num_banks),
        DirectMappedCache(num_lines=DEFAULTS["direct_lines"],
                          classify_misses=False),
    )


def _make_cc_prime(t_m: int, num_banks: int) -> CCMachine:
    config = _direct_config(t_m, num_banks).with_(
        cache_lines=DEFAULTS["prime_lines"])
    return CCMachine(config, PrimeMappedCache(c=13, classify_misses=False))


def _machines(t_m: int, num_banks: int):
    return {
        "MM-model": partial(_make_mm, t_m, num_banks),
        "CC-direct": partial(_make_cc_direct, t_m, num_banks),
        "CC-prime": partial(_make_cc_prime, t_m, num_banks),
    }


def _sample(make_machine, vcm: VCM, seed: int, problem_size: int) -> float:
    return (
        VCMDriver(make_machine(), seed=seed)
        .run(vcm, problem_size=problem_size)
        .cycles_per_result
    )


def _sample_seeds(base_seed: int, seeds: int) -> list[int]:
    """The per-sample driver seeds for one grid point.

    Derived from the *base seed and sample index only* — never from the
    worker a sample happens to land on — so any ``workers`` value (and
    any future scheduling change) yields bit-identical figures.
    """
    return [base_seed * 1_000_003 + i for i in range(seeds)]


def _measure(
    make_machine, vcm: VCM, seeds: int, blocks: int,
    workers: int | None = None, base_seed: int = 0,
) -> float:
    """Seed-averaged cycles per result for one machine at one grid point.

    ``workers`` > 1 fans the per-seed runs out over a process pool; the
    default (``None`` or 1, e.g. under pytest) stays serial in-process.
    Results are identical either way: the sample seeds come from
    :func:`_sample_seeds` and ``pool.map`` preserves input order.
    """
    problem_size = vcm.blocking_factor * blocks
    sample_seeds = _sample_seeds(base_seed, seeds)
    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=min(workers, seeds)) as pool:
            samples = list(pool.map(
                partial(_sample, make_machine, vcm,
                        problem_size=problem_size),
                sample_seeds,
            ))
    else:
        samples = [_sample(make_machine, vcm, seed, problem_size)
                   for seed in sample_seeds]
    return summarize(samples).mean


def figure7_simulated(
    t_m_values=None, *, block: int = 1024, reuse: int | None = None,
    seeds: int = 8, blocks: int = 6, workers: int | None = None,
    base_seed: int = 0,
) -> FigureResult:
    """Figure 7's three curves, measured on the cycle-level machines.

    ``reuse=None`` runs the paper's full-reuse steady state (``R = B``).
    ``blocks`` independent blocks per run sample the stride distribution;
    with one block the direct-mapped curve is a single draw of the stride
    lottery and noisy.  ``workers`` parallelises seed sampling across
    processes; ``base_seed`` shifts the whole seed family without
    affecting worker-invariance.
    """
    t_m_values = list(t_m_values or (8, 16, 32, 48, 64))
    reuse_factor = block if reuse is None else reuse
    vcm = VCM(
        blocking_factor=block, reuse_factor=reuse_factor,
        p_ds=DEFAULTS["p_ds"],
        p_stride1_s1=DEFAULTS["p_stride1"], p_stride1_s2=DEFAULTS["p_stride1"],
    )
    curves: dict[str, list[float]] = {"MM-model": [], "CC-direct": [],
                                      "CC-prime": []}
    for t_m in t_m_values:
        for label, factory in _machines(t_m, num_banks=64).items():
            curves[label].append(
                _measure(factory, vcm, seeds, blocks, workers=workers,
                         base_seed=base_seed))
    return FigureResult(
        "fig7-simulated",
        "Figure 7 regenerated by cycle-level simulation",
        "memory access time t_m (cycles)", t_m_values,
        "measured clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes=f"simulated; M=64, B={block}, R={reuse_factor}, {seeds} seeds",
    )


def figure8_simulated(
    block_values=None, *, t_m: int = 32, reuse: int | None = None,
    seeds: int = 8, blocks: int = 6, workers: int | None = None,
    base_seed: int = 0,
) -> FigureResult:
    """Figure 8's three curves, measured on the cycle-level machines.

    ``reuse=None`` runs full reuse per point (``R = B`` for each swept
    blocking factor); ``workers`` parallelises seed sampling.
    """
    block_values = list(block_values or (256, 1024, 4096, 8191))
    curves: dict[str, list[float]] = {"MM-model": [], "CC-direct": [],
                                      "CC-prime": []}
    for block in block_values:
        vcm = VCM(
            blocking_factor=block,
            reuse_factor=block if reuse is None else reuse,
            p_ds=DEFAULTS["p_ds"],
            p_stride1_s1=DEFAULTS["p_stride1"],
            p_stride1_s2=DEFAULTS["p_stride1"],
        )
        for label, factory in _machines(t_m, num_banks=64).items():
            curves[label].append(
                _measure(factory, vcm, seeds, blocks, workers=workers,
                         base_seed=base_seed))
    return FigureResult(
        "fig8-simulated",
        "Figure 8 regenerated by cycle-level simulation",
        "blocking factor B (elements)", block_values,
        "measured clock cycles per result",
        [FigureSeries(k, v) for k, v in curves.items()],
        notes=(f"simulated; M=64, t_m={t_m}, "
               f"{'full reuse R=B' if reuse is None else f'R={reuse}'}, "
               f"{seeds} seeds"),
    )
