"""Shape checks: does each regenerated figure show what the paper claims?

Absolute cycle counts are not the reproduction target (the substrate is a
model, not the authors' machine); the *shape* is.  Each check encodes one
claim the paper makes about a figure — who wins, where the crossover
falls, what stays flat — and evaluates it against the regenerated data.
The checks are asserted in the test suite and tabulated in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import ALL_FIGURES, FigureResult

__all__ = ["ClaimCheck", "check_figure", "check_all_figures"]


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim evaluated against regenerated data.

    Attributes:
        figure_id: which figure the claim belongs to.
        claim: the paper's statement, paraphrased.
        passed: whether the regenerated data shows it.
        detail: the measured quantity backing the verdict.
    """

    figure_id: str
    claim: str
    passed: bool
    detail: str


def _crossover(x_values, losing, winning):
    """First x where ``winning`` drops below ``losing`` (None if never)."""
    for x, lose, win in zip(x_values, losing, winning):
        if win < lose:
            return x
    return None


def _flatness(values) -> float:
    """max/min ratio of a curve (1.0 = perfectly flat)."""
    lo, hi = min(values), max(values)
    return hi / lo if lo > 0 else float("inf")


def check_fig4(result: FigureResult) -> list[ClaimCheck]:
    mm4 = result.series_by_label("MM-model B=4K").values
    cc4 = result.series_by_label("CC-direct B=4K").values
    mm2 = result.series_by_label("MM-model B=2K").values
    cc2 = result.series_by_label("CC-direct B=2K").values
    cross4 = _crossover(result.x_values, mm4, cc4)
    cross2 = _crossover(result.x_values, mm2, cc2)
    return [
        ClaimCheck("fig4", "CC-direct overtakes MM past t_m ~ 20 at B=4K (paper: 20)",
                   cross4 is not None and 12 <= cross4 <= 28,
                   f"crossover at t_m={cross4}"),
        ClaimCheck("fig4", "CC-direct overtakes MM past t_m ~ 7 at B=2K (paper: 7)",
                   cross2 is not None and 4 <= cross2 <= 12,
                   f"crossover at t_m={cross2}"),
        ClaimCheck("fig4", "at small t_m the cacheless machine is faster",
                   cc4[0] > mm4[0], f"t_m={result.x_values[0]}: "
                   f"CC={cc4[0]:.2f} vs MM={mm4[0]:.2f}"),
    ]


def check_fig5(result: FigureResult) -> list[ClaimCheck]:
    checks = []
    for t_m in (8, 16):
        mm = result.series_by_label(f"MM-model t_m={t_m}").values
        cc = result.series_by_label(f"CC-direct t_m={t_m}").values
        equal_at_one = abs(mm[0] - cc[0]) / mm[0] < 0.02
        checks.append(ClaimCheck(
            "fig5", f"models perform the same at R=1 (t_m={t_m})",
            equal_at_one, f"MM={mm[0]:.2f} CC={cc[0]:.2f}"))
        checks.append(ClaimCheck(
            "fig5", f"CC wins whenever R > 1 (t_m={t_m})",
            all(c < m for c, m in zip(cc[1:], mm[1:])),
            f"R=2: CC={cc[1]:.2f} MM={mm[1]:.2f}"))
    cc16 = result.series_by_label("CC-direct t_m=16").values
    tail_change = abs(cc16[-1] - cc16[-2]) / cc16[-2]
    checks.append(ClaimCheck(
        "fig5", "diminishing returns: curve flattens at large R",
        tail_change < 0.05, f"last-step change {tail_change:.1%}"))
    return checks


def check_fig6(result: FigureResult) -> list[ClaimCheck]:
    checks = []
    for t_m, lo, hi in ((16, 2048, 5120), (32, 3072, 7168)):
        mm = result.series_by_label(f"MM-model t_m={t_m}").values
        cc = result.series_by_label(f"CC-direct t_m={t_m}").values
        cross = _crossover(result.x_values, cc, mm)  # where MM gets cheaper
        checks.append(ClaimCheck(
            "fig6",
            f"direct-mapped cache loses to MM past B ~ "
            f"{'4K' if t_m == 16 else '5K'} (t_m={t_m})",
            cross is not None and lo <= cross <= hi,
            f"crossover at B={cross}"))
    return checks


def check_fig7(result: FigureResult) -> list[ClaimCheck]:
    mm = result.series_by_label("MM-model").values
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    last = -1  # t_m = 64 = M
    return [
        ClaimCheck("fig7", "prime-mapped curve stays nearly flat",
                   _flatness(prime) < 1.6, f"max/min = {_flatness(prime):.2f}"),
        ClaimCheck("fig7", "at t_m=M=64 prime is ~3x faster than direct (paper: 3x)",
                   2.0 <= direct[last] / prime[last] <= 4.5,
                   f"ratio {direct[last] / prime[last]:.2f}"),
        ClaimCheck("fig7", "at t_m=M=64 prime is ~5x faster than MM (paper: ~5x)",
                   3.5 <= mm[last] / prime[last] <= 6.5,
                   f"ratio {mm[last] / prime[last]:.2f}"),
        ClaimCheck("fig7", "prime wins over the entire t_m range",
                   all(p <= min(d, m) for p, d, m in zip(prime, direct, mm)),
                   "pointwise minimum"),
        ClaimCheck("fig7", "direct-mapped CC catches up with MM near t_m ~ 24 "
                   "(paper: ~24)",
                   _crossover(result.x_values, mm, direct) is not None
                   and 12 <= _crossover(result.x_values, mm, direct) <= 36,
                   f"direct overtakes MM at t_m="
                   f"{_crossover(result.x_values, mm, direct)}"),
    ]


def check_fig8(result: FigureResult) -> list[ClaimCheck]:
    mm = result.series_by_label("MM-model").values
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    cross = _crossover(result.x_values, direct, mm)
    return [
        ClaimCheck("fig8", "direct crosses above MM near B ~ 3K (paper: ~3K)",
                   cross is not None and 1536 <= cross <= 4608,
                   f"crossover at B={cross}"),
        ClaimCheck("fig8", "prime-mapped curve remains flat in B",
                   _flatness(prime) < 1.4, f"max/min = {_flatness(prime):.2f}"),
        ClaimCheck("fig8", "prime wins at every blocking factor",
                   all(p <= min(d, m) * 1.001
                       for p, d, m in zip(prime, direct, mm)),
                   "pointwise minimum"),
    ]


def check_fig9(result: FigureResult) -> list[ClaimCheck]:
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    gaps = [d - p for d, p in zip(direct, prime)]
    return [
        ClaimCheck("fig9", "gap shrinks monotonically as P_stride1 grows",
                   all(a >= b - 1e-9 for a, b in zip(gaps, gaps[1:])),
                   f"gap {gaps[0]:.2f} -> {gaps[-1]:.2f}"),
        ClaimCheck("fig9", "schemes tie at P_stride1 = 1",
                   abs(direct[-1] - prime[-1]) / direct[-1] < 1e-4,
                   f"relative difference "
                   f"{abs(direct[-1] - prime[-1]) / direct[-1]:.2e}"),
        ClaimCheck("fig9", "prime wins whenever unit stride is not certain",
                   all(p < d for p, d in zip(prime[:-1], direct[:-1])),
                   "pointwise"),
    ]


def check_fig10(result: FigureResult) -> list[ClaimCheck]:
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    ratios = [d / p for d, p in zip(direct[1:], prime[1:])]
    return [
        ClaimCheck("fig10", "cycle time grows with the double-stream fraction",
                   prime[-1] > prime[0] and direct[-1] > direct[0],
                   f"prime {prime[0]:.2f}->{prime[-1]:.2f}"),
        ClaimCheck("fig10", "prime beats direct over all P_ds",
                   all(p <= d for p, d in zip(prime, direct)), "pointwise"),
        ClaimCheck("fig10", "advantage ranges from ~40% to ~2x (paper: 40%-2x)",
                   min(ratios) >= 1.2 and max(ratios) >= 1.8,
                   f"ratios {min(ratios):.2f}..{max(ratios):.2f}"),
    ]


def check_fig11a(result: FigureResult) -> list[ClaimCheck]:
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    return [
        ClaimCheck("fig11a", "direct-mapped cache degrades as rows dominate",
                   direct[-1] > direct[0] * 1.5,
                   f"{direct[0]:.2f} -> {direct[-1]:.2f}"),
        ClaimCheck("fig11a", "prime-mapped performance is ~flat in the mix",
                   _flatness(prime) < 1.1, f"max/min = {_flatness(prime):.2f}"),
        ClaimCheck("fig11a", "prime at least ties everywhere",
                   all(p <= d * 1.001 for p, d in zip(prime, direct)),
                   "pointwise"),
    ]


def check_fig11b(result: FigureResult) -> list[ClaimCheck]:
    direct = result.series_by_label("CC-direct").values
    prime = result.series_by_label("CC-prime").values
    ratios = [d / p for d, p in zip(direct, prime)]
    return [
        ClaimCheck("fig11b", "prime outperforms direct for every B2",
                   all(r >= 0.999 for r in ratios),
                   f"min ratio {min(ratios):.2f}"),
        ClaimCheck("fig11b", "improvement exceeds 2x (paper: 'more than 2')",
                   max(ratios) > 2.0, f"max ratio {max(ratios):.2f}"),
    ]


_CHECKERS = {
    "fig4": check_fig4,
    "fig5": check_fig5,
    "fig6": check_fig6,
    "fig7": check_fig7,
    "fig8": check_fig8,
    "fig9": check_fig9,
    "fig10": check_fig10,
    "fig11a": check_fig11a,
    "fig11b": check_fig11b,
}


def check_figure(result: FigureResult) -> list[ClaimCheck]:
    """Evaluate every encoded claim for one regenerated figure."""
    try:
        checker = _CHECKERS[result.figure_id]
    except KeyError:
        raise ValueError(f"no checks registered for {result.figure_id!r}") from None
    return checker(result)


def check_all_figures() -> list[ClaimCheck]:
    """Regenerate every figure and evaluate every claim."""
    checks: list[ClaimCheck] = []
    for figure_id, build in ALL_FIGURES.items():
        checks.extend(check_figure(build()))
    return checks
