"""Functional model of the Figure-1 cache-address generation datapath.

The prime-mapped cache does not change cache *lookup* at all — tag memory,
data memory and the comparator are exactly a direct-mapped cache's.  What
changes is how the index field presented to the data-memory decoder is
produced.  Figure 1 of the paper shows the added datapath:

* a ``c``-bit end-around-carry adder,
* two multiplexors selecting the adder's operands,
* a register holding the stride in Mersenne form,
* a register holding the running cache index of the previous element,
* optional registers caching converted vector starting indices for reuse.

For the *first* element of a vector the multiplexors feed the adder the
``tag`` and ``index`` fields of the memory address (folding the address
modulo ``2^c - 1``); for every *subsequent* element they feed it the
previous cache index and the converted stride.  Either way one ``c``-bit
add per element suffices, which is why the scheme adds nothing to the
critical path: the add is narrower than the full-width memory-address add
the machine performs anyway.

This module models that datapath bit-for-bit and *counts adder passes*, so
the "no extra delay" claim is checkable: tests assert that element stepping
costs exactly one pass and that start-address conversion costs
``ceil(address_bits / c) - 1`` passes (one pass per extra chunk).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mersenne import MersenneModulus, canonical, eac_add

__all__ = [
    "AddressLayout",
    "GeneratedAddress",
    "AddressGenerator",
    "AdderCostModel",
]


@dataclass(frozen=True)
class AddressLayout:
    """Bit layout of a machine address for a cache design.

    Attributes:
        address_bits: total width of a memory address in bits.
        offset_bits: ``W = log2(line size in addressable units)``.
        index_bits: ``c = log2(number of lines + 1)`` for the prime cache,
            or ``log2(number of lines)`` for a conventional cache.
    """

    address_bits: int
    offset_bits: int
    index_bits: int

    def __post_init__(self) -> None:
        if self.offset_bits < 0 or self.index_bits <= 0:
            raise ValueError("field widths must be positive")
        if self.offset_bits + self.index_bits > self.address_bits:
            raise ValueError(
                "offset + index fields exceed the address width "
                f"({self.offset_bits}+{self.index_bits} > {self.address_bits})"
            )

    @property
    def tag_bits(self) -> int:
        """Width of the tag field (whatever the offset and index leave)."""
        return self.address_bits - self.offset_bits - self.index_bits

    def split(self, address: int) -> tuple[int, int, int]:
        """Split a memory address into ``(tag, index_field, offset)``."""
        if not 0 <= address < (1 << self.address_bits):
            raise ValueError(f"address {address} exceeds {self.address_bits} bits")
        offset = address & ((1 << self.offset_bits) - 1)
        index = (address >> self.offset_bits) & ((1 << self.index_bits) - 1)
        tag = address >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def line_address(self, address: int) -> int:
        """Drop the offset field: the line-granular address used for mapping."""
        return address >> self.offset_bits


@dataclass(frozen=True)
class GeneratedAddress:
    """One element's pair of addresses, as issued by the datapath.

    Attributes:
        memory_address: full-width address for the interleaved memory
            (used on a miss), produced by the normal address unit.
        cache_index: the prime-mapped index (``0 .. 2^c - 2``) for the
            data-memory decoder.
        tag: the tag field of ``memory_address`` (stored/compared verbatim,
            exactly as in a direct-mapped cache).
        adder_passes: end-around-carry adder passes spent producing the
            index for *this* element.
    """

    memory_address: int
    cache_index: int
    tag: int
    adder_passes: int


@dataclass
class AdderCostModel:
    """Accumulates datapath activity for 'no added delay' accounting.

    Attributes:
        element_passes: adder passes spent stepping per-element indexes.
        conversion_passes: passes spent converting vector start addresses
            and strides into Mersenne form.
        stride_conversions: how many strides were loaded/converted.
        start_conversions: how many vector starts were converted.
    """

    element_passes: int = 0
    conversion_passes: int = 0
    stride_conversions: int = 0
    start_conversions: int = 0

    @property
    def total_passes(self) -> int:
        """All adder passes, conversions included."""
        return self.element_passes + self.conversion_passes


@dataclass
class AddressGenerator:
    """The per-stream cache-address generator of Figure 1.

    One instance serves one vector access stream (real hardware replicates
    it, or re-converts on vector restart — Section 2.3 discusses that
    trade-off; :meth:`restart_vector` models the re-conversion path).

    Args:
        layout: address bit layout; ``layout.index_bits`` is the Mersenne
            exponent ``c``.

    Example:
        >>> gen = AddressGenerator(AddressLayout(32, 3, 5))
        >>> first = gen.start_vector(start_address=0x100, stride_lines=3)
        >>> nxt = gen.next_element()
        >>> (nxt.cache_index - first.cache_index) % 31
        3
    """

    layout: AddressLayout
    costs: AdderCostModel = field(default_factory=AdderCostModel)

    def __post_init__(self) -> None:
        self._mod = MersenneModulus(self.layout.index_bits)
        self._stride_lines = 0
        self._stride_mersenne = 0
        self._current_memory_address = 0
        self._current_index = 0
        self._active = False
        #: converted start indexes, keyed by (start line address, stride),
        #: modelling the optional start-address register file.
        self._start_registers: dict[tuple[int, int], int] = {}

    @property
    def modulus(self) -> MersenneModulus:
        """The Mersenne modulus this generator folds into."""
        return self._mod

    def _convert(self, value: int) -> tuple[int, int]:
        """Fold ``value`` mod ``2^c - 1`` counting adder passes.

        Returns ``(residue, passes)``.  A value already inside one chunk
        costs zero passes; each extra chunk costs one end-around-carry add,
        matching the paper's "a sequence of c-bit additions".
        """
        chunks = self._mod.fold_chunks(value)
        acc = chunks[0]
        passes = 0
        for chunk in chunks[1:]:
            acc = eac_add(acc, chunk, self._mod.c)
            passes += 1
        return canonical(acc, self._mod.c), passes

    def set_stride(self, stride_lines: int) -> int:
        """Load a vector stride (in lines), converting it to Mersenne form.

        Conversion happens when the stride register is written — off the
        per-element critical path.  Returns the adder passes it took.
        """
        if stride_lines >= 0:
            converted, passes = self._convert(stride_lines)
        else:
            magnitude, passes = self._convert(-stride_lines)
            converted = self._mod.sub(0, magnitude)
        self._stride_lines = stride_lines
        self._stride_mersenne = converted
        self.costs.stride_conversions += 1
        self.costs.conversion_passes += passes
        return passes

    def start_vector(self, start_address: int, stride_lines: int) -> GeneratedAddress:
        """Begin a vector stream at ``start_address`` with the given stride.

        The start index is computed by folding the (tag, index) fields of
        the start address — the multiplexors select address subfields as
        the adder operands — and is cached in the start-register file for
        :meth:`restart_vector`.
        """
        self.set_stride(stride_lines)
        line = self.layout.line_address(start_address)
        index, passes = self._convert(line)
        self.costs.start_conversions += 1
        self.costs.conversion_passes += passes
        self._start_registers[(line, stride_lines)] = index
        self._current_memory_address = start_address
        self._current_index = index
        self._active = True
        tag, _, _ = self.layout.split(start_address)
        return GeneratedAddress(start_address, index, tag, passes)

    def restart_vector(self, start_address: int, stride_lines: int) -> GeneratedAddress:
        """Re-enter a previously started vector.

        If the design paid for start registers the converted index is read
        back for free; otherwise this degenerates to :meth:`start_vector`
        (the 1–2 extra cycles per vector start-up the paper discusses).
        """
        line = self.layout.line_address(start_address)
        cached = self._start_registers.get((line, stride_lines))
        if cached is None:
            return self.start_vector(start_address, stride_lines)
        self.set_stride(stride_lines)
        self._current_memory_address = start_address
        self._current_index = cached
        self._active = True
        tag, _, _ = self.layout.split(start_address)
        return GeneratedAddress(start_address, cached, tag, 0)

    def next_element(self) -> GeneratedAddress:
        """Step to the next vector element: one end-around-carry add.

        The memory address advances by the stride through the normal
        address unit; the cache index advances by the converted stride
        through the ``c``-bit adder.  Both happen in parallel, hence one
        adder pass and no critical-path growth.
        """
        if not self._active:
            raise RuntimeError("next_element before start_vector")
        self._current_memory_address += self._stride_lines << self.layout.offset_bits
        if not 0 <= self._current_memory_address < (1 << self.layout.address_bits):
            raise ValueError("vector walked off the end of the address space")
        self._current_index = canonical(
            eac_add(self._current_index, self._stride_mersenne, self._mod.c),
            self._mod.c,
        )
        self.costs.element_passes += 1
        tag, _, _ = self.layout.split(self._current_memory_address)
        return GeneratedAddress(
            self._current_memory_address, self._current_index, tag, 1
        )

    def generate(self, start_address: int, stride_lines: int, length: int):
        """Yield the whole stream for a vector of ``length`` elements."""
        if length <= 0:
            raise ValueError("vector length must be positive")
        yield self.start_vector(start_address, stride_lines)
        for _ in range(length - 1):
            yield self.next_element()
