"""Gate-delay model for the 'no critical-path extension' claim.

The paper's central hardware argument (Section 2.3) is that prime-mapped
index generation adds *zero* delay to the processor's critical path,
because the ``c``-bit end-around-carry addition runs in parallel with —
and finishes no later than — the full-width memory-address addition every
vector machine performs per element anyway.

This module makes that claim checkable with a simple gate-level delay
model.  Delays are in units of one two-input gate delay:

* **ripple-carry adder**: ``2 * width`` (carry chain of one AND+OR per bit)
  plus the initial propagate/generate level;
* **carry-lookahead adder**: ``4 * ceil(log_g(width)) + 2`` for lookahead
  groups of ``g`` (the classic two-level-per-group tree);
* **end-around carry**: re-injecting the carry-out can at worst double a
  naive adder, but the standard technique (compute ``a + b`` and
  ``a + b + 1`` speculatively and select on the carry-out — a carry-select
  variant) costs a single 2:1 multiplexor level on top of the base adder.

The comparison the claim needs: ``eac_delay(c)`` vs ``adder_delay(A)``
where ``A`` (the machine's address width, 32+ bits) is much wider than
``c`` (13–19 bits for realistic vector caches), so the parallel index add
always finishes first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.address_gen import AddressLayout

__all__ = [
    "ripple_adder_delay",
    "lookahead_adder_delay",
    "end_around_carry_delay",
    "mux_delay",
    "CriticalPathReport",
    "critical_path_report",
]

#: 2:1 multiplexor = one gate level (AND-OR with selected inputs).
MUX_DELAY = 2


def ripple_adder_delay(width: int) -> int:
    """Gate delays of a ``width``-bit ripple-carry adder."""
    if width <= 0:
        raise ValueError("width must be positive")
    return 2 * width + 1


def lookahead_adder_delay(width: int, group: int = 4) -> int:
    """Gate delays of a ``width``-bit carry-lookahead adder.

    ``group`` is the lookahead fan-in; each tree level costs two gate
    levels up (generate/propagate) and two down (carry distribution).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if group < 2:
        raise ValueError("lookahead group must be at least 2")
    levels = max(1, math.ceil(math.log(width, group)))
    return 4 * levels + 2


def mux_delay(count: int = 1) -> int:
    """Gate delays of ``count`` chained 2:1 multiplexor stages."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return MUX_DELAY * count


def end_around_carry_delay(width: int, group: int = 4) -> int:
    """Gate delays of a ``width``-bit end-around-carry (mod ``2^w - 1``) add.

    Carry-select implementation: the two candidate sums (``a+b`` and
    ``a+b+1``) are computed by parallel lookahead adders and the carry-out
    picks one — base adder delay plus one multiplexor level.
    """
    return lookahead_adder_delay(width, group) + mux_delay(1)


@dataclass(frozen=True)
class CriticalPathReport:
    """Delay comparison between the two parallel address paths.

    Attributes:
        memory_path_delay: gate delays of the normal full-width address
            addition (base + stride) the machine performs per element.
        index_path_delay: gate delays of the prime index update
            (end-around-carry add of stride to previous index, behind the
            operand-select multiplexor of Figure 1).
        slack: ``memory_path_delay - index_path_delay``; non-negative
            means the prime index is ready before the memory address —
            the paper's claim.
    """

    memory_path_delay: int
    index_path_delay: int

    @property
    def slack(self) -> int:
        return self.memory_path_delay - self.index_path_delay

    @property
    def no_critical_path_extension(self) -> bool:
        """Whether the paper's zero-added-delay claim holds."""
        return self.slack >= 0


def critical_path_report(layout: AddressLayout, group: int = 4) -> CriticalPathReport:
    """Evaluate the claim for a concrete address layout.

    The memory path is a full ``address_bits``-wide lookahead add; the
    index path is the Figure-1 datapath: one operand multiplexor followed
    by a ``c``-bit end-around-carry add.
    """
    memory = lookahead_adder_delay(layout.address_bits, group)
    index = mux_delay(1) + end_around_carry_delay(layout.index_bits, group)
    return CriticalPathReport(memory, index)
