"""Design-space helpers: sizing a prime-mapped cache and costing it.

Two practical questions a designer asks before adopting the paper's
scheme, answered as code:

1. **Geometry** — given a capacity budget and line size, which Mersenne
   exponent fits, how many lines/bytes does the prime cache lose versus
   the power-of-two design, and how wide are its fields?
   (:func:`propose_design`)
2. **Cost** — what extra hardware does Figure 1 add?  The paper counts
   "2 multiplexors, a full adder and a few registers";
   :func:`hardware_cost` itemises that in gate-equivalents so the
   "negligible" claim has a number attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.address_gen import AddressLayout
from repro.core.delay import CriticalPathReport, critical_path_report
from repro.core.mersenne import nearest_mersenne_exponent

__all__ = ["PrimeCacheDesign", "propose_design", "HardwareCost", "hardware_cost"]


@dataclass(frozen=True)
class PrimeCacheDesign:
    """A sized prime-mapped cache.

    Attributes:
        c: Mersenne exponent; the cache has ``2^c - 1`` lines.
        lines: ``2^c - 1``.
        line_size_bytes: bytes per line.
        capacity_bytes: total data capacity.
        layout: the address field layout (tag/index/offset).
        tag_bits: stored tag width, including the one-bit alias
            disambiguator prime mapping needs.
        capacity_loss_vs_pow2: fraction of a ``2^c``-line cache's capacity
            given up (one line in ``2^c`` — the cost of primality).
        critical_path: delay comparison for the index datapath.
    """

    c: int
    lines: int
    line_size_bytes: int
    capacity_bytes: int
    layout: AddressLayout
    tag_bits: int
    capacity_loss_vs_pow2: float
    critical_path: CriticalPathReport


def propose_design(
    capacity_bytes: int,
    line_size_bytes: int = 8,
    address_bits: int = 32,
) -> PrimeCacheDesign:
    """Size the largest prime-mapped cache within a capacity budget.

    Args:
        capacity_bytes: data capacity budget (e.g. ``128 * 1024`` for the
            Alliant FX/8's 128 KB cache).
        line_size_bytes: bytes per line; the paper's choice is 8 (one
            double word).  Must be a power of two.
        address_bits: machine address width (byte-granular).

    Example:
        >>> design = propose_design(128 * 1024, line_size_bytes=8)
        >>> design.c, design.lines
        (13, 8191)
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity budget must be positive")
    if line_size_bytes <= 0 or line_size_bytes & (line_size_bytes - 1):
        raise ValueError("line size must be a positive power of two")
    budget_lines = capacity_bytes // line_size_bytes
    if budget_lines < 3:
        raise ValueError("budget is below the smallest Mersenne cache (3 lines)")
    c = nearest_mersenne_exponent(budget_lines.bit_length() - 1)
    lines = (1 << c) - 1
    offset_bits = line_size_bytes.bit_length() - 1
    layout = AddressLayout(
        address_bits=address_bits, offset_bits=offset_bits, index_bits=c
    )
    return PrimeCacheDesign(
        c=c,
        lines=lines,
        line_size_bytes=line_size_bytes,
        capacity_bytes=lines * line_size_bytes,
        layout=layout,
        tag_bits=layout.tag_bits + 1,  # +1 disambiguates the folded alias
        capacity_loss_vs_pow2=1.0 / (1 << c),
        critical_path=critical_path_report(layout),
    )


@dataclass(frozen=True)
class HardwareCost:
    """Gate-equivalent itemisation of the Figure-1 additions.

    Attributes:
        adder_gates: the ``c``-bit end-around-carry adder (carry-select:
            two c-bit adders plus a selecting mux row).
        mux_gates: the two operand multiplexors (2 * c one-bit 2:1 muxes).
        register_bits: stride register + current-index register, plus
            ``start_registers`` optional vector-start registers of ``c``
            bits each (the performance/cost trade of Section 2.3).
        extra_tag_bits_total: one extra stored tag bit per line.
    """

    adder_gates: int
    mux_gates: int
    register_bits: int
    extra_tag_bits_total: int

    @property
    def total_gate_equivalents(self) -> int:
        """Everything, counting one register bit / tag bit as ~4 gates."""
        return (self.adder_gates + self.mux_gates
                + 4 * self.register_bits + 4 * self.extra_tag_bits_total)


#: Gates per full-adder bit (XORs + majority) in the estimate.
_FULL_ADDER_GATES_PER_BIT = 5
#: Gates per 2:1 mux bit.
_MUX_GATES_PER_BIT = 3


def hardware_cost(design: PrimeCacheDesign, start_registers: int = 2) -> HardwareCost:
    """Itemise the added hardware for a given design.

    Args:
        design: the sized cache.
        start_registers: how many converted vector-start registers to pay
            for (0 trades them for 1–2 extra cycles per vector restart,
            as Section 2.3 discusses).
    """
    if start_registers < 0:
        raise ValueError("start_registers must be non-negative")
    c = design.c
    adder = 2 * c * _FULL_ADDER_GATES_PER_BIT + c * _MUX_GATES_PER_BIT
    muxes = 2 * c * _MUX_GATES_PER_BIT
    registers = (2 + start_registers) * c
    return HardwareCost(
        adder_gates=adder,
        mux_gates=muxes,
        register_bits=registers,
        extra_tag_bits_total=design.lines,
    )
