"""Mersenne-number arithmetic for prime-mapped cache indexing.

The prime-mapped cache (Yang & Wu, ISCA 1992, Section 2.3) maps a memory
line address ``A`` to cache line ``A mod (2^c - 1)`` where ``2^c - 1`` is a
Mersenne prime.  The whole point of choosing a Mersenne modulus is that the
reduction never needs a divider: because ``2^c === 1 (mod 2^c - 1)``, a
``c``-bit binary adder whose carry-out is fed back into its carry-in (an
*end-around-carry* adder, the same circuit used for one's-complement sums)
computes the residue of a ``2c``-bit quantity in a single add.  Reducing an
arbitrarily wide address is a short sequence of such adds, one per ``c``-bit
chunk of the address.

This module provides the arithmetic in a bit-faithful way: every operation
is expressed in terms of the folded additions the hardware would perform,
and the pure ``x % (2**c - 1)`` result is only used in the test suite to
check equivalence.

A representation subtlety worth spelling out: a ``c``-bit register holds
values ``0 .. 2^c - 1``, which is *one more* value than there are residues
modulo ``2^c - 1``.  The all-ones word ``2^c - 1`` is congruent to ``0``;
:func:`canonical` collapses it.  Hardware either adds a single detect-and-
clear gate after the adder or tolerates a shadow alias of line 0 — the
paper glosses over this, and we document and canonicalise it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MERSENNE_EXPONENTS",
    "is_mersenne_exponent",
    "nearest_mersenne_exponent",
    "MersenneModulus",
    "eac_add",
    "fold",
    "canonical",
]

#: Exponents ``c`` for which ``2^c - 1`` is prime, covering every cache size
#: a real design could plausibly use (4 lines up to 2G lines).  The sequence
#: is OEIS A000043 truncated at 31.
MERSENNE_EXPONENTS: tuple[int, ...] = (2, 3, 5, 7, 13, 17, 19, 31)


def is_mersenne_exponent(c: int) -> bool:
    """Return ``True`` when ``2^c - 1`` is one of the supported Mersenne primes."""
    return c in MERSENNE_EXPONENTS


def nearest_mersenne_exponent(c: int) -> int:
    """Return the largest supported exponent that does not exceed ``c``.

    A designer with a budget of ``2^c`` cache lines picks the largest
    Mersenne prime ``2^e - 1 <= 2^c``; since ``2^e - 1 < 2^e`` this is simply
    the largest supported ``e <= c``.

    Raises:
        ValueError: if ``c`` is below the smallest supported exponent.
    """
    candidates = [e for e in MERSENNE_EXPONENTS if e <= c]
    if not candidates:
        raise ValueError(
            f"no Mersenne exponent <= {c}; smallest supported is "
            f"{MERSENNE_EXPONENTS[0]}"
        )
    return candidates[-1]


def eac_add(a: int, b: int, c: int) -> int:
    """End-around-carry addition of two ``c``-bit values.

    Computes ``a + b`` with the carry-out of the ``c``-bit adder folded back
    into the carry-in, exactly as the Figure-1 datapath does.  Both inputs
    must already fit in ``c`` bits.  The result is a ``c``-bit value (the
    all-ones alias of zero is *not* collapsed here; see :func:`canonical`).

    Raises:
        ValueError: if an operand does not fit in ``c`` bits.
    """
    mask = (1 << c) - 1
    if not 0 <= a <= mask or not 0 <= b <= mask:
        raise ValueError(f"operands must be {c}-bit values: got {a}, {b}")
    s = a + b
    s = (s & mask) + (s >> c)
    # a + b <= 2*mask = 2^(c+1) - 2, so one fold leaves at most mask + 1;
    # a second fold of that single carry finishes the job.
    s = (s & mask) + (s >> c)
    return s


def canonical(x: int, c: int) -> int:
    """Collapse the all-ones alias: ``2^c - 1 -> 0``.

    ``x`` must be a ``c``-bit value.  Residues modulo ``2^c - 1`` live in
    ``0 .. 2^c - 2``; the ``c``-bit pattern of all ones is the second
    encoding of residue 0.
    """
    mask = (1 << c) - 1
    if not 0 <= x <= mask:
        raise ValueError(f"{x} is not a {c}-bit value")
    return 0 if x == mask else x


def fold(x: int, c: int) -> int:
    """Reduce an arbitrary non-negative integer modulo ``2^c - 1``.

    Implemented as the hardware would: repeatedly split ``x`` into its low
    ``c`` bits and the rest, and add the pieces with :func:`eac_add`.  The
    result is canonical (in ``0 .. 2^c - 2``).
    """
    if x < 0:
        raise ValueError("fold expects a non-negative integer")
    mask = (1 << c) - 1
    while x > mask:
        x = (x & mask) + (x >> c)
    # One more fold is impossible to need here, but the all-ones alias may
    # remain.
    return canonical(x, c)


@dataclass(frozen=True)
class MersenneModulus:
    """A Mersenne modulus ``2^c - 1`` with hardware-shaped arithmetic.

    This is the arithmetic object the rest of the library builds on: the
    prime-mapped cache uses it for index computation, the address generator
    uses it to step vector indices, and the analytical model uses it for
    conflict reasoning.

    Attributes:
        c: the exponent; the modulus is ``2^c - 1``.

    Example:
        >>> m = MersenneModulus(5)
        >>> m.value
        31
        >>> m.reduce(5 * 31 + 7)
        7
    """

    c: int

    def __post_init__(self) -> None:
        if self.c < 2:
            raise ValueError("Mersenne exponent must be at least 2")

    @property
    def value(self) -> int:
        """The modulus ``2^c - 1``."""
        return (1 << self.c) - 1

    @property
    def is_prime(self) -> bool:
        """Whether this modulus is one of the Mersenne *primes*.

        The arithmetic works for any exponent, but the conflict-freedom
        guarantees of the prime-mapped cache need a prime modulus.
        """
        return is_mersenne_exponent(self.c)

    def reduce(self, x: int) -> int:
        """Reduce ``x`` modulo ``2^c - 1`` via chunk folding."""
        return fold(x, self.c)

    def add(self, a: int, b: int) -> int:
        """Residue addition: canonical ``(a + b) mod (2^c - 1)``.

        Operands may be any non-negative integers; they are folded first
        (callers holding residues pay nothing, since folding a residue is a
        no-op).
        """
        return canonical(eac_add(self.reduce(a), self.reduce(b), self.c), self.c)

    def sub(self, a: int, b: int) -> int:
        """Residue subtraction ``(a - b) mod (2^c - 1)``.

        Hardware performs subtraction by adding the one's complement of the
        subtrahend — which is exactly the additive inverse modulo
        ``2^c - 1`` — so this, too, is a single end-around-carry add.
        """
        b_res = self.reduce(b)
        complement = self.value - b_res if b_res else 0
        return self.add(self.reduce(a), complement)

    def mul(self, a: int, b: int) -> int:
        """Residue multiplication ``(a * b) mod (2^c - 1)``.

        Not needed on the cache's critical path (strides are added, never
        multiplied, during element stepping) but useful for analysis, e.g.
        locating the k-th element of a strided vector directly.
        """
        return self.reduce(self.reduce(a) * self.reduce(b))

    def convert_stride(self, stride: int) -> int:
        """Fold a vector stride into Mersenne form.

        Negative strides (descending vectors) map to their additive
        inverse, which is what loading ``-s`` through the one's-complement
        datapath produces.
        """
        if stride >= 0:
            return self.reduce(stride)
        return self.sub(0, -stride)

    def fold_chunks(self, x: int) -> list[int]:
        """Split ``x`` into the ``c``-bit chunks the folding adder consumes.

        ``fold(x) == chunks summed with end-around carry``; exposing the
        chunks lets the address generator count exactly how many adder
        passes a given address width costs.
        """
        if x < 0:
            raise ValueError("fold_chunks expects a non-negative integer")
        if x == 0:
            return [0]
        chunks = []
        mask = self.value
        while x:
            chunks.append(x & mask)
            x >>= self.c
        return chunks
