"""Core prime-mapping machinery: Mersenne arithmetic and the Figure-1
address-generation datapath."""

from repro.core.address_gen import (
    AdderCostModel,
    AddressGenerator,
    AddressLayout,
    GeneratedAddress,
)
from repro.core.delay import (
    CriticalPathReport,
    critical_path_report,
    end_around_carry_delay,
    lookahead_adder_delay,
    mux_delay,
    ripple_adder_delay,
)
from repro.core.design import (
    HardwareCost,
    PrimeCacheDesign,
    hardware_cost,
    propose_design,
)
from repro.core.mersenne import (
    MERSENNE_EXPONENTS,
    MersenneModulus,
    canonical,
    eac_add,
    fold,
    is_mersenne_exponent,
    nearest_mersenne_exponent,
)

__all__ = [
    "MERSENNE_EXPONENTS",
    "AdderCostModel",
    "CriticalPathReport",
    "HardwareCost",
    "PrimeCacheDesign",
    "AddressGenerator",
    "AddressLayout",
    "GeneratedAddress",
    "MersenneModulus",
    "canonical",
    "critical_path_report",
    "eac_add",
    "end_around_carry_delay",
    "fold",
    "hardware_cost",
    "is_mersenne_exponent",
    "lookahead_adder_delay",
    "mux_delay",
    "nearest_mersenne_exponent",
    "propose_design",
    "ripple_adder_delay",
]
