"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [fig4 fig7 ...]`` — regenerate evaluation figures and check
  the paper's claims about each; ``--simulated [--seeds N] [--workers N]``
  re-measures fig7/fig8 on the cycle-level machines instead.
* ``check [fig4 ...]`` — figure-claim checks only (no rendering); exits
  nonzero if any claim fails.
* ``verify [--quick|--deep]`` — differential verification: oracle
  sweeps, golden-baseline diff, mutation self-check (see
  ``docs/verification.md``); exits nonzero on any mismatch.
* ``design CAPACITY_BYTES`` — size a prime-mapped cache for a budget and
  itemise the added hardware (the Section-2.3 cost claim, with numbers).
* ``compare`` — replay a strided sweep through the cache organisations.
* ``subblock P`` — conflict-free blocking for a matrix leading dimension.
* ``blocking`` — blocking-factor search: utilisation and full-cache
  penalty per mapping.
* ``optimize`` — design-space search over the vectorised analytical
  surrogate: constraint filtering, Pareto-front extraction, and
  simulator verification of the top picks (see ``docs/optimizer.md``).
* ``validate`` — analytical-vs-simulation cross-check.
* ``fit TRACE`` — estimate VCM parameters from a saved trace file.
* ``report OUTPUT.md`` — write a full reproduction report (assembled
  from the orchestrated result cache).
* ``sweep [NAMES ...]`` — run the full experiment graph through the
  content-addressed result cache (see ``docs/orchestration.md``).
* ``serve`` — long-lived HTTP/JSON daemon answering job/sweep/VCM/trace
  queries from the result cache, coalescing duplicate in-flight
  requests (see ``docs/serving.md``).

``python -m repro --dump-md`` prints the whole CLI reference as
Markdown (``docs/cli.md`` is generated from it).
"""

from __future__ import annotations

import argparse

__all__ = ["main", "build_parser", "dump_markdown"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prime-mapped cache (Yang & Wu, ISCA 1992) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("ids", nargs="*", help="figure ids (default: all)")
    figures.add_argument("--simulated", action="store_true",
                         help="measure fig7/fig8 on the cycle-level machines "
                              "instead of the analytical closed forms")
    figures.add_argument("--seeds", type=int, default=8,
                         help="seeds per simulated point (with --simulated)")
    figures.add_argument("--workers", type=int, default=None,
                         help="process-pool width for simulated seed "
                              "sampling (with --simulated; default serial)")
    figures.add_argument("--base-seed", type=int, default=0,
                         help="base seed the per-sample seeds derive from "
                              "(with --simulated; results are identical "
                              "for any --workers value)")

    check = sub.add_parser(
        "check", help="figure-claim checks only (also reports the active "
                      "kernel backend)")
    check.add_argument("ids", nargs="*", help="figure ids (default: all)")

    verify = sub.add_parser(
        "verify", help="differential verification (oracles, golden "
                       "baselines, mutation self-check)")
    depth = verify.add_mutually_exclusive_group()
    depth.add_argument("--quick", action="store_true",
                       help="CI-sized sweep (default)")
    depth.add_argument("--deep", action="store_true",
                       help="scheduled-tier sweep (several times larger)")
    verify.add_argument("--seed", type=int, default=0,
                        help="base seed for the oracle case grids")
    verify.add_argument("--bless", action="store_true",
                        help="recompute and rewrite the golden baselines "
                             "under results/golden/, then exit")
    verify.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON (CI artifact)")
    verify.add_argument("--mutate", metavar="NAME", default=None,
                        help="inject one catalogued fault during the "
                             "oracle sweep (exits nonzero when caught); "
                             "see repro.verify.mutations.MUTATIONS")
    verify.add_argument("--no-selfcheck", action="store_true",
                        help="skip the mutation self-check layer")
    verify.add_argument("--no-golden", action="store_true",
                        help="skip the golden-baseline diff")
    _add_backend_flag(verify)

    design = sub.add_parser("design", help="size a prime-mapped cache")
    design.add_argument("capacity_bytes", type=int)
    design.add_argument("--line-size", type=int, default=8)
    design.add_argument("--address-bits", type=int, default=32)
    design.add_argument("--start-registers", type=int, default=2)

    compare = sub.add_parser("compare", help="replay a strided sweep")
    compare.add_argument("--stride", type=int, default=8)
    compare.add_argument("--length", type=int, default=4096)
    compare.add_argument("--sweeps", type=int, default=2)
    compare.add_argument("--c", type=int, default=13,
                         help="Mersenne exponent (prime cache 2^c - 1 lines)")
    compare.add_argument("--t-m", type=int, default=32)
    _add_backend_flag(compare)

    subblock = sub.add_parser("subblock", help="conflict-free blocking")
    subblock.add_argument("leading_dimension", type=int)
    subblock.add_argument("--c", type=int, default=13)

    blocking = sub.add_parser("blocking", help="blocking-factor search")
    blocking.add_argument("--t-m", type=int, default=32)
    blocking.add_argument("--banks", type=int, default=64)

    optimize = sub.add_parser(
        "optimize", help="design-space search over the analytical surrogate")
    optimize.add_argument("--mappings", nargs="+", default=None,
                          choices=("direct", "prime", "assoc", "hashed",
                                   "bicameral"),
                          help="cache organisations to sweep (default: all "
                               "modeled; hashed/bicameral are simulator-only "
                               "and need --allow-unmodeled)")
    optimize.add_argument("--allow-unmodeled", action="store_true",
                          help="skip (with a warning) mappings the surrogate "
                               "cannot score instead of erroring out")
    optimize.add_argument("--max-area", type=int, default=10000,
                          metavar="WORDS",
                          help="area budget: cache_lines * line_size words")
    optimize.add_argument("--max-banks", type=int, default=64,
                          help="bank budget (memory system cost cap)")
    optimize.add_argument("--max-tm", type=int, default=None,
                          metavar="CYCLES",
                          help="memory-latency budget: keep designs with "
                               "t_m <= this")
    optimize.add_argument("--min-bandwidth", type=float, default=None,
                          metavar="FRACTION",
                          help="minimum expected effective bank bandwidth "
                               "(0..1)")
    optimize.add_argument("--p-ds", type=float, default=0.1,
                          help="workload mix: fraction of double-stream "
                               "operations")
    optimize.add_argument("--p-stride1", type=float, default=0.25,
                          help="workload mix: probability of stride-1 "
                               "streams")
    optimize.add_argument("--top-k", type=int, default=8,
                          help="Pareto picks to report")
    optimize.add_argument("--verify-k", type=int, default=3,
                          help="front picks to re-score on the cycle-level "
                               "machines (0 skips simulation)")
    optimize.add_argument("--seeds", type=int, default=2,
                          help="simulation seeds per verified point")
    optimize.add_argument("--cache-dir", default=None,
                          help="result-cache directory (default: "
                               "$REPRO_CACHE_DIR or ~/.cache/repro)")
    optimize.add_argument("--json", action="store_true",
                          help="print the search + verification as JSON")

    validate = sub.add_parser("validate", help="analytics vs simulation")
    validate.add_argument("--seeds", type=int, default=4)

    fit = sub.add_parser("fit", help="fit VCM parameters to a trace file")
    fit.add_argument("trace_file", help="trace written by Trace.save()")
    fit.add_argument("--t-m", type=int, default=32)
    fit.add_argument("--banks", type=int, default=64)
    fit.add_argument("--min-run", type=int, default=4)

    report = sub.add_parser("report", help="write a full reproduction report")
    report.add_argument("output", help="path of the Markdown report to write")
    report.add_argument("--simulate", action="store_true",
                        help="include the (slow) simulation cross-check")
    report.add_argument("--seeds", type=int, default=3)
    report.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")

    sweep = sub.add_parser(
        "sweep", help="run the experiment graph through the result cache")
    sweep.add_argument("names", nargs="*",
                       help="job names (default: the full figure set; "
                            "see --list)")
    sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="process-pool width (default: min(4, CPUs); "
                            "1 runs inline)")
    sweep.add_argument("--scheduler", default=None,
                       choices=("serial", "pool", "shard"),
                       help="execution scheduler (default: pool when "
                            "--jobs > 1, else serial; shard runs the "
                            "lease-based work-queue scheduler, see "
                            "docs/orchestration.md)")
    sweep.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard-worker count (implies --scheduler "
                            "shard; default: the --jobs width)")
    sweep.add_argument("--steal", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="straggler work stealing between shards "
                            "(--scheduler shard only)")
    sweep.add_argument("--lease-ttl", type=float, default=15.0,
                       metavar="SECONDS",
                       help="shard lease heartbeat deadline; a crashed "
                            "worker's jobs re-dispatch within roughly "
                            "this interval")
    sweep.add_argument("--force", action="store_true",
                       help="re-execute every job even on a warm cache")
    sweep.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
    sweep.add_argument("--status", action="store_true",
                       help="show per-job cache status without executing")
    sweep.add_argument("--list", action="store_true",
                       help="list every registered job and exit")
    sweep.add_argument("--smoke", action="store_true",
                       help="CI smoke: run the two-figure smoke selection "
                            "twice (cold then warm) in a temporary cache "
                            "and assert the warm pass is >=5x faster")
    sweep.add_argument("--log", metavar="PATH", default=None,
                       help="append structured JSONL run events to PATH")
    sweep.add_argument("--no-artifacts", action="store_true",
                       help="skip materialising results/ artifacts")
    _add_backend_flag(sweep)

    serve = sub.add_parser(
        "serve", help="run the cache-simulation HTTP/JSON service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=8023,
                       help="TCP port (0 picks a free port)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="cold-job worker count "
                            "(default: min(4, CPUs))")
    serve.add_argument("--scheduler", default="pool",
                       choices=("pool", "shard"),
                       help="cold-job executor: a process pool, or the "
                            "persistent shard-worker crew (leases, "
                            "heartbeats, crash re-dispatch)")
    serve.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    _add_backend_flag(serve)

    return parser


def _add_backend_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--backend", default=None,
        choices=("scalar", "numpy", "compiled", "auto"),
        help="kernel backend for replay/timing engines (default: "
             "$REPRO_BACKEND or numpy; 'auto' picks compiled when a "
             "numba/C provider is available)")


def _apply_backend(args) -> None:
    """Make ``--backend`` the process default (and the workers', via env)."""
    if getattr(args, "backend", None) is None:
        return
    import os

    from repro import kernels

    kernels.set_default_backend(args.backend)
    # worker pools (sweep/serve jobs) inherit the choice through the env
    os.environ["REPRO_BACKEND"] = args.backend


_MD_PROLOGUE = """\
# CLI reference

`python -m repro <command>` (or `repro <command>` with the package
installed).  **Generated** by `python -m repro --dump-md` — edit the
argparse tree in `src/repro/cli.py`, then regenerate:

```sh
PYTHONPATH=src python -m repro --dump-md > docs/cli.md
```
"""


def dump_markdown() -> str:
    """Render the whole argparse tree as the ``docs/cli.md`` reference."""
    parser = build_parser()
    lines = [_MD_PROLOGUE]
    # the subparsers action holds every command parser, in add order
    sub = next(a for a in parser._subparsers._group_actions
               if isinstance(a, argparse._SubParsersAction))
    help_by_command = {a.dest: a.help for a in sub._choices_actions}
    for name, command in sub.choices.items():
        lines.append(f"\n## `repro {name}`\n")
        lines.append(f"{help_by_command.get(name, '')}\n")
        lines.append(f"```\nusage: {command.format_usage()[len('usage: '):].strip()}\n```\n")
        rows = [(", ".join(a.option_strings) if a.option_strings
                 else (a.metavar or a.dest),
                 a.help or "")
                for a in command._actions
                if not isinstance(a, argparse._HelpAction)]
        if rows:
            lines.append("| argument | description |\n|---|---|")
            for arg, help_text in rows:
                lines.append(f"| `{arg}` | {help_text} |")
            lines.append("")
    return "\n".join(lines)


def _cmd_figures(args) -> int:
    from repro.experiments import ALL_FIGURES, check_figure, render_figure

    if args.simulated:
        from repro.experiments import figure7_simulated, figure8_simulated

        simulated = {"fig7": figure7_simulated, "fig8": figure8_simulated}
        wanted = args.ids or sorted(simulated)
        unknown = [w for w in wanted if w not in simulated]
        if unknown:
            print(f"unknown simulated figures {unknown}; "
                  f"choose from {sorted(simulated)}")
            return 2
        for figure_id in wanted:
            result = simulated[figure_id](seeds=args.seeds,
                                          workers=args.workers,
                                          base_seed=args.base_seed)
            print(render_figure(result))
            print()
        return 0

    wanted = args.ids or sorted(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures {unknown}; choose from {sorted(ALL_FIGURES)}")
        return 2
    failures = 0
    for figure_id in wanted:
        result = ALL_FIGURES[figure_id]()
        print(render_figure(result))
        for check in check_figure(result):
            verdict = "PASS" if check.passed else "FAIL"
            failures += not check.passed
            print(f"  [{verdict}] {check.claim}  ({check.detail})")
        print()
    return 1 if failures else 0


def _backend_banner() -> str:
    """One line describing the kernel configuration, for ``repro check``."""
    from repro import kernels

    info = kernels.backend_info()
    if info["compiled_provider"] == "numba":
        compiled = f"numba {info['numba']}"
    elif info["compiled_provider"] == "cext":
        compiled = info["compiled_detail"]
    else:
        compiled = "fallback: numpy (no numba, no C compiler)"
    return (f"kernel backend: {info['default_backend']} "
            f"(compiled provider: {compiled})")


def _cmd_check(args) -> int:
    from repro.experiments import ALL_FIGURES, check_figure

    print(_backend_banner())
    wanted = args.ids or sorted(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures {unknown}; choose from {sorted(ALL_FIGURES)}")
        return 2
    failures = 0
    for figure_id in wanted:
        for check in check_figure(ALL_FIGURES[figure_id]()):
            verdict = "PASS" if check.passed else "FAIL"
            failures += not check.passed
            print(f"{figure_id}: [{verdict}] {check.claim}  ({check.detail})")
    print(f"{'FAILED' if failures else 'ok'}: {failures} claim(s) failing")
    return 1 if failures else 0


def _cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import bless, run_verification
    from repro.verify.mutations import MUTATIONS

    _apply_backend(args)
    if args.bless:
        for path in bless():
            print(f"blessed {path}")
        return 0

    mode = "deep" if args.deep else "quick"
    if args.mutate is not None:
        if args.mutate not in MUTATIONS:
            print(f"unknown mutation {args.mutate!r}; choose from "
                  f"{sorted(MUTATIONS)}")
            return 2
        # with a fault deliberately active, golden drift and the
        # self-check would only restate it — run the oracle sweep alone
        with MUTATIONS[args.mutate].active():
            report = run_verification(mode, seed=args.seed,
                                      golden=False, selfcheck=False)
    else:
        report = run_verification(
            mode, seed=args.seed,
            golden=not args.no_golden,
            selfcheck=not args.no_selfcheck)
    print(report.render())
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_design(args) -> int:
    from repro.core import hardware_cost, propose_design

    design = propose_design(args.capacity_bytes, args.line_size,
                            args.address_bits)
    cost = hardware_cost(design, start_registers=args.start_registers)
    print(f"prime-mapped cache for a {args.capacity_bytes}-byte budget:")
    print(f"  c = {design.c}  ->  {design.lines} lines of "
          f"{design.line_size_bytes} bytes = {design.capacity_bytes} bytes")
    print(f"  capacity given up vs 2^c lines: "
          f"{design.capacity_loss_vs_pow2:.4%}")
    print(f"  stored tag width: {design.tag_bits} bits "
          f"(includes 1 alias-disambiguation bit)")
    path = design.critical_path
    print(f"  index datapath delay {path.index_path_delay} vs address adder "
          f"{path.memory_path_delay} gate levels "
          f"(slack {path.slack}: claim "
          f"{'holds' if path.no_critical_path_extension else 'NEEDS WIDER LOOKAHEAD'})")
    print("  added hardware:")
    print(f"    end-around-carry adder: ~{cost.adder_gates} gates")
    print(f"    operand multiplexors:   ~{cost.mux_gates} gates")
    print(f"    registers:              {cost.register_bits} bits")
    print(f"    extra tag bits:         {cost.extra_tag_bits_total} "
          f"(1 per line)")
    return 0


def _cmd_compare(args) -> int:
    from repro.cache import (
        DirectMappedCache,
        FullyAssociativeCache,
        PrimeMappedCache,
    )
    from repro.trace import replay, strided

    _apply_backend(args)
    trace = strided(0, args.stride, args.length, sweeps=args.sweeps)
    lines = 1 << args.c
    contenders = [
        DirectMappedCache(num_lines=lines),
        PrimeMappedCache(c=args.c),
        FullyAssociativeCache(num_lines=lines),
    ]
    print(f"stride {args.stride}, {args.length} elements, "
          f"{args.sweeps} sweeps, t_m={args.t_m}:")
    if args.length > lines - 1:
        print(f"  note: the vector ({args.length} lines) exceeds the cache "
              f"(~{lines} lines); capacity misses will dominate every "
              f"organisation")
    for cache in contenders:
        result = replay(trace, cache, t_m=args.t_m)
        print(f"  {result.label:48s} hit {result.hit_ratio:6.1%}  "
              f"conflicts {result.stats.conflict_misses:6d}  "
              f"stalls {result.stall_cycles:10.0f}")
    return 0


def _cmd_subblock(args) -> int:
    from repro.analytical.subblock import (
        count_subblock_conflicts,
        max_conflict_free_block,
    )

    lines = (1 << args.c) - 1
    choice = max_conflict_free_block(args.leading_dimension, lines)
    if choice.b1 == 0:
        print(f"P = {args.leading_dimension} is a multiple of {lines}: no "
              f"multi-column conflict-free block at c={args.c}")
        return 1
    conflicts = count_subblock_conflicts(
        args.leading_dimension, choice.b1, choice.b2, lines
    )
    print(f"P = {args.leading_dimension}, prime cache {lines} lines:")
    print(f"  conflict-free block {choice.b1} x {choice.b2} "
          f"(utilisation {choice.utilization:.1%}, enumerated collisions "
          f"{conflicts})")
    return 0


def _cmd_blocking(args) -> int:
    from repro.analytical import MachineConfig
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
    from repro.analytical.optimize import (
        full_cache_penalty,
        optimal_blocking_factor,
    )

    config = MachineConfig(num_banks=args.banks, memory_access_time=args.t_m,
                           cache_lines=8192)
    for label, model in (
        ("direct 8192", DirectMappedModel(config)),
        ("prime 8191", PrimeMappedModel(config.with_(cache_lines=8191))),
    ):
        choice = optimal_blocking_factor(model)
        penalty = full_cache_penalty(model)
        print(f"{label}: best B = {choice.blocking_factor} "
              f"({choice.cache_utilization:.1%} of the cache, "
              f"{choice.cycles_per_result:.2f} cycles/result); "
              f"blocking at the full cache costs {penalty:.2f}x the optimum")
    return 0


def _cmd_optimize(args) -> int:
    import json as json_module
    from dataclasses import replace

    from repro.experiments.optimizer import render_optimize
    from repro.orchestrate import ResultStore, Runner, all_jobs

    jobs = all_jobs()
    search_params = {
        "max_area_words": args.max_area,
        "max_banks": args.max_banks,
        "max_t_m": args.max_tm,
        "min_bandwidth": args.min_bandwidth,
        "p_ds": args.p_ds,
        "p_stride1": args.p_stride1,
        "top_k": args.top_k,
    }
    if args.mappings:
        search_params["mappings"] = tuple(args.mappings)
    if args.allow_unmodeled:
        search_params["allow_unmodeled"] = True
    jobs["optimize-search"] = replace(jobs["optimize-search"],
                                      params=search_params)
    names = ["optimize-search"]
    if args.verify_k > 0:
        jobs["optimize-verify"] = replace(
            jobs["optimize-verify"],
            params={"top_k": args.verify_k, "seeds": args.seeds,
                    "blocks": 4})
        names.append("optimize-verify")
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore()
    runner = Runner(jobs.values(), store=store, results_dir=None)
    summary = runner.run(names)
    if not summary.ok:
        for outcome in summary.outcomes:
            if outcome.error:
                print(f"{outcome.name}: {outcome.error}")
        return 1
    search = summary.results["optimize-search"]
    verification = summary.results.get("optimize-verify")
    if args.json:
        print(json_module.dumps(
            {"search": search, "verification": verification}, indent=2))
    else:
        print(render_optimize(search, verification))
    return 0 if verification is None or verification["ok"] else 1


def _cmd_fit(args) -> int:
    from repro.analytical import MachineConfig
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
    from repro.analytical.fit import estimate_vcm
    from repro.trace.records import Trace

    trace = Trace.load(args.trace_file)
    try:
        fitted = estimate_vcm(trace, min_run_length=args.min_run)
    except ValueError as error:
        print(f"cannot fit: {error}")
        return 1
    print(f"{trace!r}")
    print(f"fitted {fitted.vcm.describe()}")
    print(f"  vector runs: {fitted.runs}, mean length "
          f"{fitted.mean_run_length:.1f}")
    top = sorted(fitted.stride_histogram.items(), key=lambda kv: -kv[1])[:6]
    print("  stride histogram (top):",
          ", ".join(f"{s}x{n}" for s, n in top))
    cfg = MachineConfig(num_banks=args.banks, memory_access_time=args.t_m,
                        cache_lines=8192)
    direct = DirectMappedModel(cfg).cycles_per_result(fitted.vcm)
    prime = PrimeMappedModel(
        cfg.with_(cache_lines=8191)).cycles_per_result(fitted.vcm)
    print(f"  model prediction at t_m={args.t_m}: direct {direct:.2f} "
          f"cycles/result, prime {prime:.2f} ({direct / prime:.2f}x)")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.experiments.report import report_from_inputs
    from repro.orchestrate import RESULTS_DIR, ResultStore, Runner, all_jobs

    store = ResultStore(args.cache_dir) if args.cache_dir else None
    jobs = all_jobs()
    if args.simulate:
        from dataclasses import replace

        jobs["validation"] = replace(
            jobs["validation"],
            params={**jobs["validation"].params, "seeds": args.seeds})
    runner = Runner(jobs.values(), store=store, results_dir=RESULTS_DIR)
    if args.simulate:
        # the validation grid is not part of the committed report
        # artifact, so assemble this variant from the cached inputs
        # instead of running the "report" job
        names = list(jobs["report"].deps) + ["validation"]
        summary = runner.run(names)
        if not summary.ok:
            for outcome in summary.outcomes:
                if outcome.error:
                    print(f"{outcome.name}: {outcome.error}")
            return 1
        text = report_from_inputs(summary.results)
        Path(args.output).write_text(text)
    else:
        summary = runner.run(["report"])
        if not summary.ok:
            for outcome in summary.outcomes:
                if outcome.error:
                    print(f"{outcome.name}: {outcome.error}")
            return 1
        text = summary.results["report"]
        if not text.endswith("\n"):
            text += "\n"
        Path(args.output).write_text(text)
    tail = text.strip().splitlines()[-1]
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    print(tail)
    return 0 if "claims reproduced" in tail and "FAIL" not in text else 1


def _cmd_validate(args) -> int:
    from repro.experiments.render import render_table
    from repro.experiments.validation import validation_grid

    points = validation_grid(t_m_values=(8, 16), blocks=(512, 2048),
                             seeds=args.seeds)
    print(render_table(
        ["model", "t_m", "B", "predicted", "simulated", "rel err"],
        [[p.model, p.t_m, p.block, p.predicted, p.measured,
          p.relative_error] for p in points],
    ))
    return 0


def _sweep_smoke(args) -> int:
    """Cold-then-warm smoke pass CI runs; asserts the cache pays off."""
    import json as json_module
    import tempfile

    from repro.orchestrate import (
        RESULTS_DIR,
        ResultStore,
        Runner,
        all_jobs,
        smoke_sweep,
    )

    names = list(smoke_sweep())
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        cache_dir = args.cache_dir or tmp

        def run_once():
            # RESULTS_DIR so smoke jobs that declare an artifact (the
            # zoo smoke) leave it behind for CI upload
            runner = Runner(all_jobs().values(),
                            store=ResultStore(cache_dir),
                            results_dir=RESULTS_DIR, log_path=args.log)
            return runner.run(names)

        cold = run_once()
        warm = run_once()
    speedup = cold.elapsed_s / max(warm.elapsed_s, 1e-9)
    ok = (cold.ok and warm.ok
          and warm.count("hit") == len(names)
          and speedup >= 5.0)
    if args.json:
        print(json_module.dumps({
            "cold_s": cold.elapsed_s, "warm_s": warm.elapsed_s,
            "speedup": speedup, "jobs": names, "ok": ok,
        }, indent=2))
    else:
        print(f"smoke sweep over {names}:")
        print(f"  cold: {cold.elapsed_s:8.2f}s  "
              f"({cold.count('ran')} ran, {cold.count('hit')} hit)")
        print(f"  warm: {warm.elapsed_s:8.2f}s  "
              f"({warm.count('ran')} ran, {warm.count('hit')} hit)")
        print(f"  speedup {speedup:.1f}x (required >= 5x): "
              f"{'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    import json as json_module
    import os

    from repro.orchestrate import (
        RESULTS_DIR,
        ResultStore,
        Runner,
        all_jobs,
        default_sweep,
        figure_job_names,
    )

    _apply_backend(args)
    jobs = all_jobs()
    if args.list:
        for name, job in jobs.items():
            artifact = f"  -> results/{job.artifact}" if job.artifact else ""
            print(f"{name:24s} {job.fn}{artifact}")
        return 0
    if args.smoke:
        return _sweep_smoke(args)

    names = list(args.names) if args.names else list(default_sweep())
    unknown = [n for n in names if n not in jobs]
    if unknown:
        print(f"unknown jobs {unknown}; see 'repro sweep --list'")
        return 2

    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore()
    workers = (args.jobs if args.jobs is not None
               else min(4, os.cpu_count() or 1))
    scheduler = args.scheduler or ("shard" if args.shards is not None
                                   else "auto")
    runner = Runner(
        jobs.values(), store=store, workers=workers, force=args.force,
        results_dir=None if args.no_artifacts else RESULTS_DIR,
        log_path=args.log, scheduler=scheduler, shards=args.shards,
        steal=args.steal, lease_ttl_s=args.lease_ttl)

    if args.status:
        rows = runner.status(names)
        if args.json:
            print(json_module.dumps(rows, indent=2))
        else:
            for row in rows:
                state = "cached" if row["cached"] else "missing"
                extra = (f"  ({row['elapsed_s']:.2f}s to compute)"
                         if row.get("elapsed_s") is not None else "")
                print(f"{row['name']:24s} {state:8s} "
                      f"{row['key'][:12]}{extra}")
            cached = sum(r["cached"] for r in rows)
            print(f"{cached}/{len(rows)} cached")
        return 0

    summary = runner.run(names)

    # claim checks: any analytical figure in the selection must still
    # reproduce the paper's claims, cached or not
    from repro.experiments import check_figure

    claim_failures = claim_total = 0
    for name in figure_job_names():
        if name in summary.results:
            for check in check_figure(summary.results[name]):
                claim_total += 1
                claim_failures += not check.passed

    if args.json:
        payload = summary.to_dict()
        payload["claims"] = {"checked": claim_total,
                             "failed": claim_failures}
        print(json_module.dumps(payload, indent=2))
    else:
        for outcome in summary.outcomes:
            line = (f"{outcome.name:24s} {outcome.status:8s} "
                    f"{outcome.elapsed_s:8.2f}s")
            if outcome.error:
                line += f"  {outcome.error}"
            print(line)
        print(f"run {summary.run_id}: {summary.count('hit')} hit, "
              f"{summary.count('ran')} ran, {summary.count('failed')} "
              f"failed, {summary.count('skipped')} skipped in "
              f"{summary.elapsed_s:.2f}s")
        if claim_total:
            verdict = "ok" if not claim_failures else "FAILED"
            print(f"claims: {claim_total - claim_failures}/{claim_total} "
                  f"pass ({verdict})")
    return 0 if summary.ok and not claim_failures else 1


def _cmd_serve(args) -> int:
    import os

    from repro.orchestrate import ResultStore
    from repro.serve import ServeApp, run_app

    _apply_backend(args)
    store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore()
    workers = (args.workers if args.workers is not None
               else min(4, os.cpu_count() or 1))
    app = ServeApp(host=args.host, port=args.port, store=store,
                   workers=workers, scheduler=args.scheduler)
    run_app(app)
    return 0


_COMMANDS = {
    "figures": _cmd_figures,
    "check": _cmd_check,
    "verify": _cmd_verify,
    "design": _cmd_design,
    "compare": _cmd_compare,
    "subblock": _cmd_subblock,
    "blocking": _cmd_blocking,
    "optimize": _cmd_optimize,
    "fit": _cmd_fit,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    import sys

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if "--dump-md" in argv:
        print(dump_markdown())
        return 0
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
