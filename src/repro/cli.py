"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [fig4 fig7 ...]`` — regenerate evaluation figures and check
  the paper's claims about each; ``--simulated [--seeds N] [--workers N]``
  re-measures fig7/fig8 on the cycle-level machines instead.
* ``check [fig4 ...]`` — figure-claim checks only (no rendering); exits
  nonzero if any claim fails.
* ``verify [--quick|--deep]`` — differential verification: oracle
  sweeps, golden-baseline diff, mutation self-check (see
  ``docs/verification.md``); exits nonzero on any mismatch.
* ``design CAPACITY_BYTES`` — size a prime-mapped cache for a budget and
  itemise the added hardware (the Section-2.3 cost claim, with numbers).
* ``compare`` — replay a strided sweep through the cache organisations.
* ``subblock P`` — conflict-free blocking for a matrix leading dimension.
* ``blocking`` — blocking-factor search: utilisation and full-cache
  penalty per mapping.
* ``validate`` — analytical-vs-simulation cross-check.
* ``fit TRACE`` — estimate VCM parameters from a saved trace file.
* ``report OUTPUT.md`` — write a full reproduction report.
"""

from __future__ import annotations

import argparse

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prime-mapped cache (Yang & Wu, ISCA 1992) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate evaluation figures")
    figures.add_argument("ids", nargs="*", help="figure ids (default: all)")
    figures.add_argument("--simulated", action="store_true",
                         help="measure fig7/fig8 on the cycle-level machines "
                              "instead of the analytical closed forms")
    figures.add_argument("--seeds", type=int, default=8,
                         help="seeds per simulated point (with --simulated)")
    figures.add_argument("--workers", type=int, default=None,
                         help="process-pool width for simulated seed "
                              "sampling (with --simulated; default serial)")
    figures.add_argument("--base-seed", type=int, default=0,
                         help="base seed the per-sample seeds derive from "
                              "(with --simulated; results are identical "
                              "for any --workers value)")

    check = sub.add_parser("check", help="figure-claim checks only")
    check.add_argument("ids", nargs="*", help="figure ids (default: all)")

    verify = sub.add_parser(
        "verify", help="differential verification (oracles, golden "
                       "baselines, mutation self-check)")
    depth = verify.add_mutually_exclusive_group()
    depth.add_argument("--quick", action="store_true",
                       help="CI-sized sweep (default)")
    depth.add_argument("--deep", action="store_true",
                       help="scheduled-tier sweep (several times larger)")
    verify.add_argument("--seed", type=int, default=0,
                        help="base seed for the oracle case grids")
    verify.add_argument("--bless", action="store_true",
                        help="recompute and rewrite the golden baselines "
                             "under results/golden/, then exit")
    verify.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON (CI artifact)")
    verify.add_argument("--mutate", metavar="NAME", default=None,
                        help="inject one catalogued fault during the "
                             "oracle sweep (exits nonzero when caught); "
                             "see repro.verify.mutations.MUTATIONS")
    verify.add_argument("--no-selfcheck", action="store_true",
                        help="skip the mutation self-check layer")
    verify.add_argument("--no-golden", action="store_true",
                        help="skip the golden-baseline diff")

    design = sub.add_parser("design", help="size a prime-mapped cache")
    design.add_argument("capacity_bytes", type=int)
    design.add_argument("--line-size", type=int, default=8)
    design.add_argument("--address-bits", type=int, default=32)
    design.add_argument("--start-registers", type=int, default=2)

    compare = sub.add_parser("compare", help="replay a strided sweep")
    compare.add_argument("--stride", type=int, default=8)
    compare.add_argument("--length", type=int, default=4096)
    compare.add_argument("--sweeps", type=int, default=2)
    compare.add_argument("--c", type=int, default=13,
                         help="Mersenne exponent (prime cache 2^c - 1 lines)")
    compare.add_argument("--t-m", type=int, default=32)

    subblock = sub.add_parser("subblock", help="conflict-free blocking")
    subblock.add_argument("leading_dimension", type=int)
    subblock.add_argument("--c", type=int, default=13)

    blocking = sub.add_parser("blocking", help="blocking-factor search")
    blocking.add_argument("--t-m", type=int, default=32)
    blocking.add_argument("--banks", type=int, default=64)

    validate = sub.add_parser("validate", help="analytics vs simulation")
    validate.add_argument("--seeds", type=int, default=4)

    fit = sub.add_parser("fit", help="fit VCM parameters to a trace file")
    fit.add_argument("trace_file", help="trace written by Trace.save()")
    fit.add_argument("--t-m", type=int, default=32)
    fit.add_argument("--banks", type=int, default=64)
    fit.add_argument("--min-run", type=int, default=4)

    report = sub.add_parser("report", help="write a full reproduction report")
    report.add_argument("output", help="path of the Markdown report to write")
    report.add_argument("--simulate", action="store_true",
                        help="include the (slow) simulation cross-check")
    report.add_argument("--seeds", type=int, default=3)

    return parser


def _cmd_figures(args) -> int:
    from repro.experiments import ALL_FIGURES, check_figure, render_figure

    if args.simulated:
        from repro.experiments import figure7_simulated, figure8_simulated

        simulated = {"fig7": figure7_simulated, "fig8": figure8_simulated}
        wanted = args.ids or sorted(simulated)
        unknown = [w for w in wanted if w not in simulated]
        if unknown:
            print(f"unknown simulated figures {unknown}; "
                  f"choose from {sorted(simulated)}")
            return 2
        for figure_id in wanted:
            result = simulated[figure_id](seeds=args.seeds,
                                          workers=args.workers,
                                          base_seed=args.base_seed)
            print(render_figure(result))
            print()
        return 0

    wanted = args.ids or sorted(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures {unknown}; choose from {sorted(ALL_FIGURES)}")
        return 2
    failures = 0
    for figure_id in wanted:
        result = ALL_FIGURES[figure_id]()
        print(render_figure(result))
        for check in check_figure(result):
            verdict = "PASS" if check.passed else "FAIL"
            failures += not check.passed
            print(f"  [{verdict}] {check.claim}  ({check.detail})")
        print()
    return 1 if failures else 0


def _cmd_check(args) -> int:
    from repro.experiments import ALL_FIGURES, check_figure

    wanted = args.ids or sorted(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures {unknown}; choose from {sorted(ALL_FIGURES)}")
        return 2
    failures = 0
    for figure_id in wanted:
        for check in check_figure(ALL_FIGURES[figure_id]()):
            verdict = "PASS" if check.passed else "FAIL"
            failures += not check.passed
            print(f"{figure_id}: [{verdict}] {check.claim}  ({check.detail})")
    print(f"{'FAILED' if failures else 'ok'}: {failures} claim(s) failing")
    return 1 if failures else 0


def _cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import bless, run_verification
    from repro.verify.mutations import MUTATIONS

    if args.bless:
        for path in bless():
            print(f"blessed {path}")
        return 0

    mode = "deep" if args.deep else "quick"
    if args.mutate is not None:
        if args.mutate not in MUTATIONS:
            print(f"unknown mutation {args.mutate!r}; choose from "
                  f"{sorted(MUTATIONS)}")
            return 2
        # with a fault deliberately active, golden drift and the
        # self-check would only restate it — run the oracle sweep alone
        with MUTATIONS[args.mutate].apply():
            report = run_verification(mode, seed=args.seed,
                                      golden=False, selfcheck=False)
    else:
        report = run_verification(
            mode, seed=args.seed,
            golden=not args.no_golden,
            selfcheck=not args.no_selfcheck)
    print(report.render())
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_design(args) -> int:
    from repro.core import hardware_cost, propose_design

    design = propose_design(args.capacity_bytes, args.line_size,
                            args.address_bits)
    cost = hardware_cost(design, start_registers=args.start_registers)
    print(f"prime-mapped cache for a {args.capacity_bytes}-byte budget:")
    print(f"  c = {design.c}  ->  {design.lines} lines of "
          f"{design.line_size_bytes} bytes = {design.capacity_bytes} bytes")
    print(f"  capacity given up vs 2^c lines: "
          f"{design.capacity_loss_vs_pow2:.4%}")
    print(f"  stored tag width: {design.tag_bits} bits "
          f"(includes 1 alias-disambiguation bit)")
    path = design.critical_path
    print(f"  index datapath delay {path.index_path_delay} vs address adder "
          f"{path.memory_path_delay} gate levels "
          f"(slack {path.slack}: claim "
          f"{'holds' if path.no_critical_path_extension else 'NEEDS WIDER LOOKAHEAD'})")
    print("  added hardware:")
    print(f"    end-around-carry adder: ~{cost.adder_gates} gates")
    print(f"    operand multiplexors:   ~{cost.mux_gates} gates")
    print(f"    registers:              {cost.register_bits} bits")
    print(f"    extra tag bits:         {cost.extra_tag_bits_total} "
          f"(1 per line)")
    return 0


def _cmd_compare(args) -> int:
    from repro.cache import (
        DirectMappedCache,
        FullyAssociativeCache,
        PrimeMappedCache,
    )
    from repro.trace import replay, strided

    trace = strided(0, args.stride, args.length, sweeps=args.sweeps)
    lines = 1 << args.c
    contenders = [
        DirectMappedCache(num_lines=lines),
        PrimeMappedCache(c=args.c),
        FullyAssociativeCache(num_lines=lines),
    ]
    print(f"stride {args.stride}, {args.length} elements, "
          f"{args.sweeps} sweeps, t_m={args.t_m}:")
    if args.length > lines - 1:
        print(f"  note: the vector ({args.length} lines) exceeds the cache "
              f"(~{lines} lines); capacity misses will dominate every "
              f"organisation")
    for cache in contenders:
        result = replay(trace, cache, t_m=args.t_m)
        print(f"  {result.label:48s} hit {result.hit_ratio:6.1%}  "
              f"conflicts {result.stats.conflict_misses:6d}  "
              f"stalls {result.stall_cycles:10.0f}")
    return 0


def _cmd_subblock(args) -> int:
    from repro.analytical.subblock import (
        count_subblock_conflicts,
        max_conflict_free_block,
    )

    lines = (1 << args.c) - 1
    choice = max_conflict_free_block(args.leading_dimension, lines)
    if choice.b1 == 0:
        print(f"P = {args.leading_dimension} is a multiple of {lines}: no "
              f"multi-column conflict-free block at c={args.c}")
        return 1
    conflicts = count_subblock_conflicts(
        args.leading_dimension, choice.b1, choice.b2, lines
    )
    print(f"P = {args.leading_dimension}, prime cache {lines} lines:")
    print(f"  conflict-free block {choice.b1} x {choice.b2} "
          f"(utilisation {choice.utilization:.1%}, enumerated collisions "
          f"{conflicts})")
    return 0


def _cmd_blocking(args) -> int:
    from repro.analytical import MachineConfig
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
    from repro.analytical.optimize import (
        full_cache_penalty,
        optimal_blocking_factor,
    )

    config = MachineConfig(num_banks=args.banks, memory_access_time=args.t_m,
                           cache_lines=8192)
    for label, model in (
        ("direct 8192", DirectMappedModel(config)),
        ("prime 8191", PrimeMappedModel(config.with_(cache_lines=8191))),
    ):
        choice = optimal_blocking_factor(model)
        penalty = full_cache_penalty(model)
        print(f"{label}: best B = {choice.blocking_factor} "
              f"({choice.cache_utilization:.1%} of the cache, "
              f"{choice.cycles_per_result:.2f} cycles/result); "
              f"blocking at the full cache costs {penalty:.2f}x the optimum")
    return 0


def _cmd_fit(args) -> int:
    from repro.analytical import MachineConfig
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel
    from repro.analytical.fit import estimate_vcm
    from repro.trace.records import Trace

    trace = Trace.load(args.trace_file)
    try:
        fitted = estimate_vcm(trace, min_run_length=args.min_run)
    except ValueError as error:
        print(f"cannot fit: {error}")
        return 1
    print(f"{trace!r}")
    print(f"fitted {fitted.vcm.describe()}")
    print(f"  vector runs: {fitted.runs}, mean length "
          f"{fitted.mean_run_length:.1f}")
    top = sorted(fitted.stride_histogram.items(), key=lambda kv: -kv[1])[:6]
    print("  stride histogram (top):",
          ", ".join(f"{s}x{n}" for s, n in top))
    cfg = MachineConfig(num_banks=args.banks, memory_access_time=args.t_m,
                        cache_lines=8192)
    direct = DirectMappedModel(cfg).cycles_per_result(fitted.vcm)
    prime = PrimeMappedModel(
        cfg.with_(cache_lines=8191)).cycles_per_result(fitted.vcm)
    print(f"  model prediction at t_m={args.t_m}: direct {direct:.2f} "
          f"cycles/result, prime {prime:.2f} ({direct / prime:.2f}x)")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import write_report

    text = write_report(args.output, include_simulation=args.simulate,
                        seeds=args.seeds)
    tail = text.strip().splitlines()[-1]
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    print(tail)
    return 0 if "claims reproduced" in tail and "FAIL" not in text else 1


def _cmd_validate(args) -> int:
    from repro.experiments.render import render_table
    from repro.experiments.validation import validation_grid

    points = validation_grid(t_m_values=(8, 16), blocks=(512, 2048),
                             seeds=args.seeds)
    print(render_table(
        ["model", "t_m", "B", "predicted", "simulated", "rel err"],
        [[p.model, p.t_m, p.block, p.predicted, p.measured,
          p.relative_error] for p in points],
    ))
    return 0


_COMMANDS = {
    "figures": _cmd_figures,
    "check": _cmd_check,
    "verify": _cmd_verify,
    "design": _cmd_design,
    "compare": _cmd_compare,
    "subblock": _cmd_subblock,
    "blocking": _cmd_blocking,
    "fit": _cmd_fit,
    "report": _cmd_report,
    "validate": _cmd_validate,
}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
