"""The job-graph runner: dependency ordering, a process pool, the cache.

The runner is the only component with side effects.  For every selected
job (plus its transitive dependencies) it

1. computes the content-addressed cache key (dependency keys folded in,
   so keys are computed in topological order),
2. answers from the :class:`~repro.orchestrate.store.ResultStore` when
   the key is present (``--force`` skips the lookup, never the save),
3. otherwise executes the job — inline (``scheduler="serial"``), on a
   ``ProcessPoolExecutor`` (``"pool"``), or across N shard workers with
   leases, work stealing and crash re-dispatch (``"shard"``, see
   :mod:`repro.orchestrate.sched`) — recording wall time and peak RSS,
   and persists the result,
4. materialises the job's declared artifact under ``results_dir``
   (skipping the write when the bytes are already identical), and
5. appends structured events to the JSONL run log.

Crash-resumability falls out of 1–3: a killed sweep has already
persisted every finished job under its key, so the next run re-executes
only the missing or invalidated ones.  ``KeyboardInterrupt`` is
deliberately not swallowed — finished work is on disk, the rest resumes.
"""

from __future__ import annotations

import os
import tempfile
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.orchestrate.fingerprint import (
    FingerprintCache,
    cache_key,
    canonical_params,
)
from repro.orchestrate.job import Job
from repro.orchestrate.runlog import RunLog
from repro.orchestrate.store import ResultStore

__all__ = ["JobOutcome", "RunSummary", "Runner"]


def _execute(job: Job, inputs: dict[str, Any] | None):
    """Run one job, measuring wall time and peak RSS (pool-side too)."""
    start = time.perf_counter()
    result = job.execute(inputs)
    elapsed = time.perf_counter() - start
    try:
        import resource

        max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # pragma: no cover - non-Unix fallback
        max_rss_kb = 0
    return result, elapsed, max_rss_kb


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one job in one run.

    ``status`` is ``"hit"`` (cache answered), ``"ran"`` (executed and
    stored), ``"failed"`` (raised), or ``"skipped"`` (an upstream job
    failed).
    """

    name: str
    key: str
    status: str
    elapsed_s: float = 0.0
    max_rss_kb: int = 0
    error: str | None = None


@dataclass
class RunSummary:
    """One sweep's account: per-job outcomes plus the results themselves."""

    run_id: str
    outcomes: list[JobOutcome] = field(default_factory=list)
    results: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    #: Shard-scheduler counters (leases, steals, expiries, ...) when the
    #: run used ``scheduler="shard"``; empty otherwise.
    scheduler: dict = field(default_factory=dict)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def ok(self) -> bool:
        return all(o.status in ("hit", "ran") for o in self.outcomes)

    def outcome(self, name: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no outcome for job {name!r}")

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "counts": {s: self.count(s)
                       for s in ("hit", "ran", "failed", "skipped")},
            **({"scheduler": dict(self.scheduler)}
               if self.scheduler else {}),
            "jobs": [
                {"name": o.name, "key": o.key, "status": o.status,
                 "elapsed_s": o.elapsed_s, "max_rss_kb": o.max_rss_kb,
                 **({"error": o.error} if o.error else {})}
                for o in self.outcomes
            ],
        }


class Runner:
    """Schedules a job dict through the cache and (optionally) a pool.

    Args:
        jobs: the graph (any iterable of :class:`Job`; names must be
            unique and every dep must name a job in the set).
        store: the result cache (default: the default cache dir).
        workers: ``<= 1`` runs inline; ``N > 1`` fans independent jobs
            out over a ``ProcessPoolExecutor(max_workers=N)``.
        force: execute every job even on a warm cache (results are
            still saved, refreshing the entries).
        results_dir: where job artifacts are materialised; ``None``
            disables artifact writing.
        log_path: JSONL run-log destination (``None`` disables logging).
        scheduler: ``"serial"``, ``"pool"``, ``"shard"``, or ``"auto"``
            (the default — ``shard`` when ``shards`` is set, else
            ``pool``/``serial`` by ``workers``).
        shards: shard-worker count for the ``shard`` scheduler
            (default: ``workers``).
        steal: allow straggler work stealing (``shard`` only).
        lease_ttl_s: shard lease heartbeat deadline, seconds.
        sched_options: extra :class:`~repro.orchestrate.sched.\
ShardScheduler` keyword arguments (tests and fault drills).
    """

    def __init__(self, jobs: Iterable[Job], *,
                 store: ResultStore | None = None,
                 workers: int = 1, force: bool = False,
                 results_dir: Path | str | None = None,
                 log_path: Path | str | None = None,
                 scheduler: str = "auto", shards: int | None = None,
                 steal: bool = True, lease_ttl_s: float = 15.0,
                 sched_options: Mapping[str, Any] | None = None) -> None:
        self.jobs: dict[str, Job] = {}
        for job in jobs:
            if job.name in self.jobs:
                raise ValueError(f"duplicate job name {job.name!r}")
            self.jobs[job.name] = job
        for job in self.jobs.values():
            unknown = [d for d in job.deps if d not in self.jobs]
            if unknown:
                raise ValueError(
                    f"job {job.name!r} depends on unknown jobs {unknown}")
        self.store = store if store is not None else ResultStore()
        self.workers = max(1, int(workers))
        self.force = force
        self.results_dir = (Path(results_dir)
                            if results_dir is not None else None)
        self.log_path = log_path
        if scheduler == "auto":
            scheduler = ("shard" if shards is not None
                         else "pool" if self.workers > 1 else "serial")
        if scheduler not in ("serial", "pool", "shard"):
            raise ValueError(f"unknown scheduler {scheduler!r}; choose "
                             f"from 'serial', 'pool', 'shard'")
        self.scheduler = scheduler
        self.shards = max(1, int(shards if shards is not None
                                 else self.workers))
        self.steal = steal
        self.lease_ttl_s = lease_ttl_s
        self.sched_options = dict(sched_options or {})

    # ------------------------------------------------------------------
    # planning

    def plan(self, names: Iterable[str] | None = None
             ) -> tuple[list[Job], dict[str, str]]:
        """Dependency-closed topological order plus cache keys.

        Returns ``(ordered_jobs, keys)`` where every dep precedes its
        consumers and ``keys`` maps job name → content-addressed key.
        """
        wanted = list(names) if names is not None else sorted(self.jobs)
        unknown = [n for n in wanted if n not in self.jobs]
        if unknown:
            raise KeyError(f"unknown jobs {unknown}; "
                           f"choose from {sorted(self.jobs)}")
        order: list[Job] = []
        state: dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(name: str, chain: tuple[str, ...]) -> None:
            if state.get(name) == 2:
                return
            if state.get(name) == 1:
                cycle = " -> ".join((*chain, name))
                raise ValueError(f"dependency cycle: {cycle}")
            state[name] = 1
            for dep in self.jobs[name].deps:
                visit(dep, (*chain, name))
            state[name] = 2
            order.append(self.jobs[name])

        for name in wanted:
            visit(name, ())

        fingerprints = FingerprintCache()
        keys: dict[str, str] = {}
        for job in order:
            keys[job.name] = cache_key(job, keys, fingerprints)
        return order, keys

    def status(self, names: Iterable[str] | None = None) -> list[dict]:
        """Cache status per planned job (no execution)."""
        order, keys = self.plan(names)
        rows = []
        for job in order:
            entry = self.store.load(keys[job.name])
            row = {"name": job.name, "key": keys[job.name],
                   "cached": entry is not None}
            if entry is not None:
                row["elapsed_s"] = entry.meta.get("elapsed_s")
                row["stored_at"] = entry.meta.get("stored_at")
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # execution

    def run(self, names: Iterable[str] | None = None) -> RunSummary:
        """Execute the selection (plus deps); returns the summary."""
        order, keys = self.plan(names)
        summary = RunSummary(run_id=uuid.uuid4().hex[:12])
        started = time.perf_counter()
        with RunLog(self.log_path) as log:
            log.emit("run_start", run_id=summary.run_id,
                     jobs=[j.name for j in order], workers=self.workers,
                     scheduler=self.scheduler, force=self.force)
            try:
                if self.scheduler == "shard":
                    self._run_shard(order, keys, summary, log)
                elif self.scheduler == "pool" and self.workers > 1:
                    self._run_pool(order, keys, summary, log)
                else:
                    self._run_serial(order, keys, summary, log)
            finally:
                summary.elapsed_s = time.perf_counter() - started
                log.emit("run_end", run_id=summary.run_id,
                         elapsed_s=summary.elapsed_s,
                         hit=summary.count("hit"), ran=summary.count("ran"),
                         failed=summary.count("failed"),
                         skipped=summary.count("skipped"))
        return summary

    # -- shared helpers -------------------------------------------------

    def _try_cache(self, job: Job, key: str):
        if self.force:
            return None
        return self.store.load(key)

    def _record(self, summary: RunSummary, log: RunLog, job: Job, key: str,
                status: str, *, result: Any = None, elapsed: float = 0.0,
                rss: int = 0, error: str | None = None) -> None:
        outcome = JobOutcome(name=job.name, key=key, status=status,
                             elapsed_s=elapsed, max_rss_kb=rss, error=error)
        summary.outcomes.append(outcome)
        if status in ("hit", "ran"):
            summary.results[job.name] = result
            self._materialise(job, result)
        event = {"hit": "job_cached", "ran": "job_done",
                 "failed": "job_failed", "skipped": "job_skipped"}[status]
        log.emit(event, job=job.name, key=key, elapsed_s=elapsed,
                 max_rss_kb=rss, **({"error": error} if error else {}))

    def _store_result(self, job: Job, key: str, result: Any,
                      elapsed: float, rss: int) -> None:
        self.store.save(key, result, {
            "job": job.name, "fn": job.fn,
            "params": canonical_params(job.params),
            "elapsed_s": elapsed, "max_rss_kb": rss,
        })

    def _materialise(self, job: Job, result: Any) -> None:
        """(Re)write the job's artifact; no-op when bytes already match."""
        if job.artifact is None or self.results_dir is None:
            return
        text = job.render_result(result)
        if not text.endswith("\n"):
            text += "\n"
        path = self.results_dir / job.artifact
        path.parent.mkdir(parents=True, exist_ok=True)
        data = text.encode()
        try:
            if path.read_bytes() == data:
                return
        except OSError:
            pass
        # temp + replace: a concurrent reader (or a second runner sharing
        # the results dir) never observes a partially written artifact
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{path.name}-",
            delete=False)
        try:
            with handle:
                handle.write(data)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _blocked(self, job: Job, summary: RunSummary) -> bool:
        """Whether an upstream failure/skip blocks this job."""
        bad = {o.name for o in summary.outcomes
               if o.status in ("failed", "skipped")}
        return any(dep in bad for dep in job.deps)

    def _inputs(self, job: Job, summary: RunSummary) -> dict[str, Any] | None:
        if not job.deps:
            return None
        return {dep: summary.results[dep] for dep in job.deps}

    # -- serial path ----------------------------------------------------

    def _run_serial(self, order: list[Job], keys: dict[str, str],
                    summary: RunSummary, log: RunLog) -> None:
        for job in order:
            key = keys[job.name]
            if self._blocked(job, summary):
                self._record(summary, log, job, key, "skipped")
                continue
            entry = self._try_cache(job, key)
            if entry is not None:
                self._record(summary, log, job, key, "hit",
                             result=entry.result,
                             elapsed=entry.meta.get("elapsed_s", 0.0))
                continue
            log.emit("job_start", job=job.name, key=key)
            try:
                result, elapsed, rss = _execute(
                    job, self._inputs(job, summary))
            except KeyboardInterrupt:
                raise  # finished jobs are already cached: resumable
            except Exception as exc:  # noqa: BLE001 - fold into outcome
                self._record(summary, log, job, key, "failed",
                             error=f"{type(exc).__name__}: {exc}")
                continue
            self._store_result(job, key, result, elapsed, rss)
            self._record(summary, log, job, key, "ran", result=result,
                         elapsed=elapsed, rss=rss)

    # -- shard path -----------------------------------------------------

    def _run_shard(self, order: list[Job], keys: dict[str, str],
                   summary: RunSummary, log: RunLog) -> None:
        """Run via the lease-based shard scheduler (see ``sched/``).

        Workers persist results into the shared store themselves; this
        side folds the scheduler's outcomes back into the summary and
        materialises artifacts from the store, so serial/pool/shard
        runs produce byte-identical ``results/``.
        """
        from repro.orchestrate.sched import ShardScheduler

        options = dict(
            shards=self.shards, steal=self.steal,
            lease_ttl_s=self.lease_ttl_s, force=self.force,
            run_id=summary.run_id, emit=log.emit)
        options.update(self.sched_options)
        report = ShardScheduler(order, keys, self.store,
                                **options).run()
        summary.scheduler = dict(report.counters)
        by_name = {o["name"]: o for o in report.outcomes}
        for job in order:
            outcome = by_name[job.name]
            status = outcome["status"]
            if status in ("hit", "ran"):
                entry = self.store.load(outcome["key"])
                self._record(summary, log, job, outcome["key"], status,
                             result=entry.result if entry else None,
                             elapsed=outcome["elapsed_s"],
                             rss=outcome["max_rss_kb"])
            else:
                self._record(summary, log, job, outcome["key"], status,
                             error=outcome.get("error"))

    # -- pool path ------------------------------------------------------

    def _run_pool(self, order: list[Job], keys: dict[str, str],
                  summary: RunSummary, log: RunLog) -> None:
        remaining_deps = {job.name: len(job.deps) for job in order}
        dependents: dict[str, list[str]] = {job.name: [] for job in order}
        in_plan = set(remaining_deps)
        for job in order:
            for dep in job.deps:
                if dep in in_plan:
                    dependents[dep].append(job.name)

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures: dict = {}

            def finish(name: str) -> None:
                """Unblock and launch this job's ready dependents."""
                for child in dependents[name]:
                    remaining_deps[child] -= 1
                    if remaining_deps[child] == 0:
                        launch(self.jobs[child])

            def launch(job: Job) -> None:
                key = keys[job.name]
                if self._blocked(job, summary):
                    self._record(summary, log, job, key, "skipped")
                    finish(job.name)
                    return
                entry = self._try_cache(job, key)
                if entry is not None:
                    self._record(summary, log, job, key, "hit",
                                 result=entry.result,
                                 elapsed=entry.meta.get("elapsed_s", 0.0))
                    finish(job.name)
                    return
                log.emit("job_start", job=job.name, key=key)
                future = pool.submit(_execute, job,
                                     self._inputs(job, summary))
                futures[future] = job

            for job in order:
                if remaining_deps[job.name] == 0:
                    launch(job)

            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures.pop(future)
                    key = keys[job.name]
                    try:
                        result, elapsed, rss = future.result()
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001
                        self._record(summary, log, job, key, "failed",
                                     error=f"{type(exc).__name__}: {exc}")
                    else:
                        self._store_result(job, key, result, elapsed, rss)
                        self._record(summary, log, job, key, "ran",
                                     result=result, elapsed=elapsed, rss=rss)
                    finish(job.name)
