"""Structured JSONL run logs.

Every sweep appends one JSON object per line: a ``run_start`` header,
one ``job_start`` / ``job_cached`` / ``job_done`` / ``job_failed`` /
``job_skipped`` event per job, and a ``run_end`` trailer with totals.
The log is the machine-readable account of what ran, what the cache
answered, and what each job cost — CI uploads it as an artifact, and
``repro sweep --status`` summarises the cache side of the same story.

Every record is flushed *and fsynced* before :meth:`RunLog.emit`
returns: the crash-resume tests (and any post-mortem of a killed sweep)
read the log to establish partial progress, so a record must never sit
in a userspace or kernel buffer when the process is SIGKILLed or the
machine dies.  ``emit`` is thread-safe — the sharded scheduler logs
from its transport threads.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO

__all__ = ["RunLog", "read_events"]


class RunLog:
    """Appends timestamped JSONL events to ``path`` (or swallows them)."""

    def __init__(self, path: Path | str | None) -> None:
        self.path = Path(path) if path is not None else None
        self._handle: IO[str] | None = None
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")

    def emit(self, event: str, **fields) -> None:
        if self._handle is None:
            return
        record = {"event": event, "ts": time.time(), **fields}
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is None:  # closed by another thread
                return
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Path | str) -> list[dict]:
    """Parse a JSONL run log back into event dicts."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
