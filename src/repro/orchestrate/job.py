"""The job model: a pure function, a parameter dict, declared inputs.

A :class:`Job` names everything that determines its output: the
implementing function (as an importable ``"module:attr"`` reference, so
jobs pickle cleanly into pool workers), the keyword parameters, the
upstream jobs whose results it consumes, and the source modules whose
code the output depends on.  Those four ingredients — nothing else —
feed the content-addressed cache key (see
:mod:`repro.orchestrate.fingerprint`), which is what makes re-runs of
unchanged jobs instant and killed sweeps resumable.

Jobs must be *pure*: same parameters + same inputs + same code ⇒ same
result, no side effects.  Side effects (writing ``results/`` files) are
the runner's: a job may declare an ``artifact`` plus an optional
``render`` function and the runner materialises the rendered text after
every run, cached or not, so the on-disk outputs are always present and
byte-identical.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Job", "resolve"]


def resolve(ref: str) -> Callable:
    """Import a ``"module:attr"`` reference (``attr`` may be dotted)."""
    module_name, _, attr_path = ref.partition(":")
    if not attr_path:
        raise ValueError(f"function reference {ref!r} is not 'module:attr'")
    obj: Any = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        obj = getattr(obj, attr)
    return obj


@dataclass(frozen=True)
class Job:
    """One node of the experiment graph.

    Attributes:
        name: unique job name (``"fig4"``, ``"ablation-mappings"``, ...).
        fn: ``"module:attr"`` reference to the pure function.  Called as
            ``fn(**params)`` for leaf jobs and ``fn(inputs, **params)``
            when the job declares ``deps`` (``inputs`` maps dep name →
            dep result).
        params: keyword parameters; must be JSON-canonicalisable (ints,
            floats, strings, bools, None, lists/tuples, dicts).
        deps: names of upstream jobs whose results are this job's inputs.
            Their cache keys are folded into this job's key, so an
            invalidated input transitively invalidates every consumer.
        modules: module or package names whose source code fingerprints
            the result (the function's own module is always included).
            Touching any ``.py`` file under them invalidates the entry.
        render: optional ``"module:attr"`` of a pure ``result -> str``
            renderer used to materialise ``artifact``.
        artifact: optional file name under the results directory that the
            runner (re)writes from the rendered result after every run.
    """

    name: str
    fn: str
    params: dict = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    modules: tuple[str, ...] = ()
    render: str | None = None
    artifact: str | None = None

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"job {self.name!r}: fn {self.fn!r} is not 'module:attr'")
        if self.artifact is None and self.render is not None:
            raise ValueError(
                f"job {self.name!r}: render given without an artifact")

    @property
    def fn_module(self) -> str:
        """The module part of :attr:`fn`."""
        return self.fn.partition(":")[0]

    def fingerprint_scope(self) -> tuple[str, ...]:
        """The sorted, de-duplicated module set folded into the key."""
        return tuple(sorted({self.fn_module, *self.modules}))

    def execute(self, inputs: dict[str, Any] | None = None) -> Any:
        """Run the job in-process (no caching; the runner adds that)."""
        fn = resolve(self.fn)
        if self.deps:
            return fn(dict(inputs or {}), **self.params)
        return fn(**self.params)

    def render_result(self, result: Any) -> str:
        """Render ``result`` to the artifact text (identity for strings)."""
        if self.render is not None:
            return resolve(self.render)(result)
        if not isinstance(result, str):
            raise TypeError(
                f"job {self.name!r}: artifact declared but the result is "
                f"{type(result).__name__}, not str, and no render is set")
        return result
