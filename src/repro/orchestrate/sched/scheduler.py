"""Scheduler frontends: a DAG run (``ShardScheduler``) and a persistent
pool (``ShardPool``).

Both compose the same parts — a :class:`Coordinator`, a transport, N
shard workers — and differ only in lifecycle:

* :class:`ShardScheduler` seeds the coordinator with a planned
  ``(order, keys)`` job graph, answers warm keys from the store (and
  committed jobs from a prior crashed attempt from the journal), runs
  workers until the table is terminal, and returns a
  :class:`SchedReport`.  ``Runner(scheduler="shard")`` is its caller.
* :class:`ShardPool` keeps its coordinator and workers alive across
  many ad-hoc submissions — the cold-path executor behind
  ``repro serve --scheduler shard``.

Workers come in two modes: ``process`` (spawned interpreters over a
:class:`~repro.orchestrate.sched.transport.SocketTransport` — the real
thing, SIGKILL-able, remote-capable) and ``thread`` (in-process over a
:class:`~repro.orchestrate.sched.transport.LocalTransport` — fast
enough for property tests to run hundreds of randomized DAGs).

Fault tolerance in the monitor loop: a worker process that dies is
respawned (within a budget derived from ``max_requeues``, so a job that
kills every host eventually fails instead of crash-looping), and if no
workers remain the surviving jobs are failed rather than hung.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.orchestrate.job import Job
from repro.orchestrate.sched.coordinator import Coordinator, JobTicket
from repro.orchestrate.sched.journal import Journal
from repro.orchestrate.sched.transport import LocalTransport, SocketTransport
from repro.orchestrate.sched.worker import WorkerLoop, shard_worker_main
from repro.orchestrate.store import ResultStore

__all__ = ["SchedReport", "ShardPool", "ShardScheduler"]

Emit = Callable[..., None]


@dataclass
class SchedReport:
    """What one sharded run did: per-job outcomes plus counters."""

    run_id: str
    outcomes: list[dict] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    shards: int = 0
    steal: bool = True
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(o["status"] in ("hit", "ran") for o in self.outcomes)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o["status"] == status)


class _WorkerCrew:
    """Spawns, tracks, respawns and stops the shard workers."""

    def __init__(self, *, mode: str, shards: int, transport,
                 store: ResultStore, poll_s: float,
                 drop_heartbeats: bool, mp_context: str) -> None:
        self.mode = mode
        self.shards = shards
        self.transport = transport
        self.store = store
        self.poll_s = poll_s
        self.drop_heartbeats = drop_heartbeats
        self._ctx = mp.get_context(mp_context)
        self._members: dict[str, Any] = {}
        self._spawned = 0
        self.deaths = 0

    def start(self) -> None:
        for _ in range(self.shards):
            self._spawn_one()

    def _spawn_one(self) -> None:
        worker_id = f"w{self._spawned}"
        self._spawned += 1
        if self.mode == "thread":
            loop = WorkerLoop(self.transport.connect(), self.store,
                              worker_id, poll_s=self.poll_s,
                              drop_heartbeats=self.drop_heartbeats)
            member = threading.Thread(target=loop.run,
                                      name=f"shard-{worker_id}",
                                      daemon=True)
            member.start()
        else:
            member = self._ctx.Process(
                target=shard_worker_main,
                args=(self.transport.address, self.transport.authkey,
                      str(self.store.root), worker_id, self.poll_s,
                      self.drop_heartbeats),
                name=f"shard-{worker_id}", daemon=True)
            member.start()
        self._members[worker_id] = member

    def pids(self) -> list[int]:
        """Live worker PIDs (process mode; empty for threads)."""
        if self.mode == "thread":
            return []
        return [m.pid for m in self._members.values()
                if m.is_alive() and m.pid is not None]

    def reap_and_respawn(self, *, respawn: bool,
                         budget_left: int) -> int:
        """Drop dead members; respawn up to ``budget_left``; returns spawned."""
        spawned = 0
        for worker_id, member in list(self._members.items()):
            if member.is_alive():
                continue
            del self._members[worker_id]
            # a process that exited 0 chose to leave (stop, or the
            # coordinator went away) — that is not a death
            if self.mode == "thread" or member.exitcode != 0:
                self.deaths += 1
            if respawn and spawned < budget_left:
                self._spawn_one()
                spawned += 1
        return spawned

    @property
    def alive(self) -> int:
        return sum(1 for m in self._members.values() if m.is_alive())

    def stop(self, timeout_s: float = 10.0) -> None:
        deadline = time.monotonic() + timeout_s
        for member in self._members.values():
            member.join(timeout=max(0.0, deadline - time.monotonic()))
        if self.mode == "process":
            for member in self._members.values():
                if member.is_alive():
                    member.terminate()
                    member.join(timeout=2.0)
        self._members.clear()


def _make_transport(mode: str):
    return LocalTransport() if mode == "thread" else SocketTransport()


class ShardScheduler:
    """Run a planned job graph across N shard workers, exactly once.

    Args:
        order: jobs in dependency (topological) order.
        keys: job name -> content-addressed cache key.
        store: the shared result store (workers write it directly).
        shards: worker count (each worker is one shard).
        steal / steal_after_s: straggler work stealing (see
            :class:`Coordinator`).
        lease_ttl_s: heartbeat deadline; crashed workers are detected
            within roughly this interval.
        force: skip warm-cache lookups (journal commits still resume).
        worker_mode: ``"process"`` (default) or ``"thread"``.
        run_id: stable id for journal-based crash resume — rerunning
            with the same id resumes from the previous attempt's journal.
        journal_root: where per-shard journals live (default
            ``<store>/journal``); ``None`` disables journaling.
        drop_heartbeats: fault-injection — workers never heartbeat, so
            every lease longer than the ttl expires and re-dispatches.
    """

    def __init__(self, order: Sequence[Job], keys: Mapping[str, str],
                 store: ResultStore, *, shards: int = 2,
                 steal: bool = True, steal_after_s: float | None = None,
                 lease_ttl_s: float = 15.0, max_requeues: int = 5,
                 force: bool = False, worker_mode: str = "process",
                 run_id: str | None = None,
                 journal_root: Path | str | None = "auto",
                 poll_s: float = 0.02, drop_heartbeats: bool = False,
                 mp_context: str = "spawn",
                 emit: Emit | None = None) -> None:
        if worker_mode not in ("process", "thread"):
            raise ValueError(f"unknown worker_mode {worker_mode!r}")
        self.order = list(order)
        self.keys = dict(keys)
        self.store = store
        self.shards = max(1, int(shards))
        self.steal = steal
        self.steal_after_s = steal_after_s
        self.lease_ttl_s = lease_ttl_s
        self.max_requeues = max_requeues
        self.force = force
        self.worker_mode = worker_mode
        self.run_id = run_id or uuid.uuid4().hex[:12]
        if journal_root == "auto":
            journal_root = store.root / "journal"
        self.journal_root = (Path(journal_root)
                             if journal_root is not None else None)
        self.poll_s = poll_s
        self.drop_heartbeats = drop_heartbeats
        self.mp_context = mp_context
        self.emit = emit
        self.crew: _WorkerCrew | None = None

    # ------------------------------------------------------------------

    def run(self) -> SchedReport:
        started = time.perf_counter()
        journal = (Journal(self.journal_root, self.run_id)
                   if self.journal_root is not None else None)
        replayed = journal.replay() if journal is not None else \
            {"committed": {}, "leased": {}, "failed": {}}
        coordinator = Coordinator(
            lease_ttl_s=self.lease_ttl_s, steal=self.steal,
            steal_after_s=self.steal_after_s,
            max_requeues=self.max_requeues, journal=journal,
            emit=self.emit)
        self._seed(coordinator, replayed["committed"])
        try:
            if not coordinator.completed:
                self._drive(coordinator)
        finally:
            if journal is not None:
                journal.close()
        report = SchedReport(
            run_id=self.run_id, outcomes=coordinator.outcomes(),
            counters=dict(coordinator.counters), shards=self.shards,
            steal=self.steal,
            elapsed_s=time.perf_counter() - started)
        if self.crew is not None:
            report.counters["worker_deaths"] = self.crew.deaths
        return report

    def _seed(self, coordinator: Coordinator,
              committed: Mapping[str, dict]) -> None:
        """Fill the job table: journal resumes, warm hits, then work."""
        for job in self.order:
            key = self.keys[job.name]
            record = committed.get(job.name)
            if (record is not None and record.get("key") == key
                    and self.store.contains(key)):
                # this run already computed it (crashed before finishing)
                # — honoured even under --force, that is the journal's job
                coordinator.mark_done(job.name, key, how="resumed")
                continue
            if not self.force:
                entry = self.store.load(key)
                if entry is not None:
                    coordinator.mark_done(
                        job.name, key, how="hit",
                        elapsed_s=entry.meta.get("elapsed_s", 0.0))
                    continue
            coordinator.add_job(job, key,
                                {dep: self.keys[dep] for dep in job.deps})

    def _drive(self, coordinator: Coordinator) -> None:
        transport = _make_transport(self.worker_mode)
        transport.bind(coordinator.handle)
        self.crew = _WorkerCrew(
            mode=self.worker_mode, shards=self.shards,
            transport=transport, store=self.store, poll_s=self.poll_s,
            drop_heartbeats=self.drop_heartbeats,
            mp_context=self.mp_context)
        respawn_budget = self.shards * (self.max_requeues + 2)
        try:
            self.crew.start()
            while not coordinator.completed:
                time.sleep(self.poll_s)
                coordinator.tick()
                if coordinator.completed:
                    break  # don't reap workers that just exited on "stop"
                spawned = self.crew.reap_and_respawn(
                    respawn=True, budget_left=respawn_budget)
                respawn_budget -= spawned
                if self.crew.alive == 0 and not coordinator.completed:
                    if respawn_budget <= 0:
                        coordinator.abort_remaining(
                            "all shard workers died and the respawn "
                            "budget is exhausted")
                        break
            coordinator.request_stop()
        finally:
            coordinator.request_stop()
            self.crew.stop()
            transport.close()

    def worker_pids(self) -> list[int]:
        """Live shard-worker PIDs (the fault suite's kill list)."""
        return [] if self.crew is None else self.crew.pids()


class ShardPool:
    """Persistent shard workers serving ad-hoc submissions (serve mode).

    Dependencies are resolved by the caller (``JobService`` walks the
    graph and guarantees dep results are in the store before
    submitting), so jobs enter the table ungated; ``dep_keys`` still
    travel to the worker for input loading.  ``execute`` blocks until
    the job's first accepted commit and returns the stored result.
    """

    def __init__(self, store: ResultStore, *, shards: int = 2,
                 lease_ttl_s: float = 30.0, steal: bool = True,
                 steal_after_s: float | None = None,
                 poll_s: float = 0.05, mp_context: str = "spawn",
                 worker_mode: str = "process") -> None:
        self.store = store
        self.shards = max(1, int(shards))
        self.coordinator = Coordinator(
            lease_ttl_s=lease_ttl_s, steal=steal,
            steal_after_s=steal_after_s, persistent=True)
        self._transport = _make_transport(worker_mode)
        self._transport.bind(self.coordinator.handle)
        self.crew = _WorkerCrew(
            mode=worker_mode, shards=self.shards,
            transport=self._transport, store=store, poll_s=poll_s,
            drop_heartbeats=False, mp_context=mp_context)
        self.crew.start()
        self._lock = threading.Lock()
        self._closed = False

    def execute(self, job: Job, key: str,
                dep_keys: Mapping[str, str] | None = None
                ) -> tuple[Any, float, int]:
        """Run one job through the shard crew; returns (result, s, rss_kb)."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        with self._lock:
            # a worker killed underneath the daemon is replaced here;
            # its abandoned lease expires and the job re-dispatches
            self.crew.reap_and_respawn(respawn=True,
                                       budget_left=self.shards)
        ticket: JobTicket = self.coordinator.submit(job, key, dep_keys)
        while not ticket.wait(timeout=0.5):
            self.coordinator.tick()
            with self._lock:
                self.crew.reap_and_respawn(respawn=True,
                                           budget_left=self.shards)
        if ticket.status != "done":
            raise RuntimeError(ticket.error
                               or f"job {job.name!r} {ticket.status}")
        entry = self.store.load(key)
        if entry is None:
            raise RuntimeError(
                f"job {job.name!r} committed but key {key[:12]} is "
                f"missing from the store")
        return entry.result, ticket.elapsed_s, ticket.max_rss_kb

    def stats(self) -> dict:
        return {"shards": self.shards, "alive": self.crew.alive,
                **self.coordinator.counters}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.coordinator.request_stop()
        self.crew.stop()
        self._transport.close()
