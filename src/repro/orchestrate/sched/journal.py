"""Per-shard crash-resume journals, layered on the content-addressed store.

The :class:`~repro.orchestrate.store.ResultStore` already makes a killed
sweep resumable: every committed result is on disk under its key.  The
journal adds the *scheduling* account on top — which shard leased which
job, which leases turned into commits, which jobs failed — one JSONL
file per shard under ``<root>/<run_id>/shard-<id>.jsonl``.

Two things the store alone cannot answer come from here:

* **forced-run resume** — ``--force`` skips cache lookups, so after a
  coordinator crash only the journal knows which jobs this run already
  recomputed (their commit records are honoured even under ``force``);
* **partial-progress forensics** — every record is flushed *and*
  fsynced before the append returns, so a SIGKILL at any instant loses
  at most the record being written, never a committed one.

Replay is crash-tolerant: a torn final line (the fsync raced the kill)
is ignored, and a ``commit`` record wins over the ``lease`` that
preceded it regardless of file order.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO

__all__ = ["Journal"]


class Journal:
    """Append-only per-shard JSONL scheduling records for one run."""

    def __init__(self, root: Path | str, run_id: str) -> None:
        self.root = Path(root)
        self.run_id = run_id
        self.dir = self.root / run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, IO[str]] = {}
        self._lock = threading.Lock()

    def shard_path(self, shard: str) -> Path:
        return self.dir / f"shard-{shard}.jsonl"

    def append(self, shard: str, record: dict) -> None:
        """Durably append one record to ``shard``'s file (flush+fsync)."""
        line = json.dumps({"ts": time.time(), **record}, sort_keys=True)
        with self._lock:
            handle = self._handles.get(shard)
            if handle is None:
                handle = open(self.shard_path(shard), "a")
                self._handles[shard] = handle
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self) -> dict:
        """Fold every shard file into ``{committed, leased, failed}``.

        ``committed`` maps job name -> its last commit record; ``leased``
        holds jobs that were granted a lease but never committed or
        failed (in flight at the crash); ``failed`` maps job -> error.
        """
        records: list[dict] = []
        for path in sorted(self.dir.glob("shard-*.jsonl")):
            shard = path.stem[len("shard-"):]
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn final line from a mid-write crash
                record["shard"] = shard
                records.append(record)
        records.sort(key=lambda r: r.get("ts", 0.0))
        committed: dict[str, dict] = {}
        leased: dict[str, dict] = {}
        failed: dict[str, dict] = {}
        for record in records:
            job = record.get("job")
            if job is None:
                continue
            event = record.get("event")
            if event == "commit":
                committed[job] = record
                leased.pop(job, None)
            elif event == "lease":
                if job not in committed and job not in failed:
                    leased[job] = record
            elif event == "fail":
                failed[job] = record
                leased.pop(job, None)
        return {"committed": committed, "leased": leased, "failed": failed}

    def close(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                try:
                    handle.close()
                except OSError:
                    pass
            self._handles.clear()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
