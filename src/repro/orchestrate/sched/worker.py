"""The shard worker: lease, load inputs, execute, persist, commit.

A worker is stateless by design — everything it needs arrives in the
lease reply (the :class:`~repro.orchestrate.job.Job`, its cache key and
its dependencies' keys) or lives in the shared
:class:`~repro.orchestrate.store.ResultStore` (dependency results,
written by whichever shard committed them).  That is what makes the
scheduler transport-agnostic: a worker on another host needs only the
coordinator address and a path to the same store.

The loop:

1. ``request`` a lease; ``wait`` replies back off for ``poll_s``,
   ``stop`` ends the loop.
2. While executing, a daemon heartbeat thread renews the lease every
   ``ttl/3`` seconds.  A heartbeat answered ``valid: False`` means the
   lease was superseded (expired and re-dispatched, or lost a steal
   race); the worker finishes its current computation — pure jobs can't
   be safely interrupted mid-flight — but its commit will be rejected
   as a duplicate, preserving exactly-once accounting.
3. The result is saved to the store *before* the commit message, so an
   accepted commit always refers to durable bytes.

``shard_worker_main`` is the process entry point (importable, so its
arguments pickle into a ``spawn`` context).  ``drop_heartbeats`` is a
fault-injection knob used by the stress suite to simulate a worker
whose heartbeats are lost in transit.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.orchestrate.job import Job
from repro.orchestrate.runner import _execute
from repro.orchestrate.store import ResultStore

__all__ = ["WorkerLoop", "shard_worker_main"]


class WorkerLoop:
    """Runs leases from a coordinator channel until told to stop."""

    def __init__(self, channel, store: ResultStore, worker_id: str, *,
                 poll_s: float = 0.05,
                 drop_heartbeats: bool = False) -> None:
        self.channel = channel
        self.store = store
        self.worker_id = worker_id
        self.poll_s = poll_s
        self.drop_heartbeats = drop_heartbeats
        self.leases_run = 0

    def run(self) -> None:
        while True:
            try:
                reply = self.channel.rpc({"type": "request",
                                          "worker": self.worker_id})
            except (ConnectionError, EOFError, OSError):
                return  # coordinator is gone; nothing left to do
            kind = reply.get("type")
            if kind == "stop":
                return
            if kind == "lease":
                self._run_lease(reply)
                continue
            time.sleep(self.poll_s)  # "wait" (or anything unexpected)

    # ------------------------------------------------------------------

    def _run_lease(self, lease: dict) -> None:
        job: Job = lease["job"]
        key: str = lease["key"]
        lease_id: str = lease["lease_id"]
        ttl_s: float = float(lease.get("ttl_s", 15.0))
        self.leases_run += 1

        superseded = threading.Event()
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.name, lease_id, ttl_s, superseded, stop_heartbeat),
            name=f"heartbeat-{self.worker_id}", daemon=True)
        heartbeat.start()
        try:
            inputs = self._load_inputs(job, lease.get("dep_keys") or {})
            result, elapsed, rss = _execute(job, inputs)
        except Exception as error:  # noqa: BLE001 - report, keep serving
            self._rpc_quiet({"type": "fail", "job": job.name,
                             "lease_id": lease_id,
                             "worker": self.worker_id,
                             "error": f"{type(error).__name__}: {error}"})
            return
        finally:
            stop_heartbeat.set()
        # durable first, then commit: an accepted commit always refers
        # to bytes that are already on disk under the key
        self.store.save(key, result, {
            "job": job.name, "fn": job.fn,
            "params": _canonical_params(job.params),
            "elapsed_s": elapsed, "max_rss_kb": rss,
            "shard": self.worker_id,
        })
        self._rpc_quiet({"type": "commit", "job": job.name,
                         "lease_id": lease_id, "worker": self.worker_id,
                         "elapsed_s": elapsed, "max_rss_kb": rss})

    def _load_inputs(self, job: Job,
                     dep_keys: dict[str, str]) -> dict[str, Any] | None:
        if not job.deps:
            return None
        inputs: dict[str, Any] = {}
        for dep in job.deps:
            entry = self.store.load(dep_keys[dep])
            if entry is None:
                raise RuntimeError(
                    f"dependency {dep!r} missing from the store "
                    f"(key {dep_keys[dep][:12]})")
            inputs[dep] = entry.result
        return inputs

    def _heartbeat_loop(self, job_name: str, lease_id: str, ttl_s: float,
                        superseded: threading.Event,
                        stop: threading.Event) -> None:
        if self.drop_heartbeats:
            return
        interval = max(ttl_s / 3.0, 0.01)
        while not stop.wait(interval):
            try:
                reply = self.channel.rpc({"type": "heartbeat",
                                          "job": job_name,
                                          "lease_id": lease_id,
                                          "worker": self.worker_id})
            except (ConnectionError, EOFError, OSError):
                return
            if not reply.get("valid", False):
                superseded.set()
                return

    def _rpc_quiet(self, message: dict) -> None:
        try:
            self.channel.rpc(message)
        except (ConnectionError, EOFError, OSError):
            pass  # coordinator gone; the lease will expire server-side


def _canonical_params(params: dict) -> str:
    from repro.orchestrate.fingerprint import canonical_params

    return canonical_params(params)


def shard_worker_main(address, authkey: bytes, store_root: str,
                      worker_id: str, poll_s: float = 0.05,
                      drop_heartbeats: bool = False) -> None:
    """Process entry point: connect, open the shared store, serve leases."""
    from repro.orchestrate.sched.transport import connect_socket

    channel = connect_socket(address, authkey)
    store = ResultStore(store_root, sweep_stale=False)
    try:
        WorkerLoop(channel, store, worker_id, poll_s=poll_s,
                   drop_heartbeats=drop_heartbeats).run()
    finally:
        channel.close()
