"""The lease-based work-queue coordinator.

One :class:`Coordinator` owns the job table for a run (or, in
*persistent* mode, for a serve daemon's lifetime) and arbitrates every
scheduling decision behind a single lock.  Scheduling policy lives
entirely here — job semantics (what a job computes) stay in
:class:`~repro.orchestrate.job.Job` and the workers.

State machine per job::

    pending --deps done--> ready --lease--> leased --commit--> done
       |                     ^                |--fail--------> failed
       |                     +--lease expired-+
       +--an upstream failed/skipped------------------------> skipped

Protocol (plain dicts, moved by a transport):

* ``{"type": "request", "worker": W}`` -> a ``lease`` reply carrying the
  job, its cache key, its dependencies' keys and a lease id/ttl; or
  ``wait`` (nothing ready yet), or ``stop`` (run complete / draining).
* ``{"type": "heartbeat", "job": J, "lease_id": L}`` -> ``ack`` with
  ``valid``; an invalid lease tells the worker its work was superseded.
* ``{"type": "commit", ...}`` -> ``ack`` with ``accepted``.  Exactly one
  commit per job is ever accepted; the rest count as duplicates.
* ``{"type": "fail", ...}`` -> ``ack``; a *raised* error is treated as
  deterministic (pure jobs) and fails the job immediately, skipping its
  dependents.

Crash handling is lease-centric: a worker that dies (or stops
heartbeating) simply lets its lease deadline pass; the next sweep
re-queues the job for deterministic re-dispatch (lowest topological
index first).  Work stealing grants a *second* lease on the oldest
straggler once it has run past ``steal_after_s``; the first commit wins
and the loser is told its lease is invalid.  Because results are
content-addressed and jobs are pure, a lost race writes byte-identical
data — the coordinator's arbitration is what makes the *accounting*
exactly-once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.orchestrate.job import Job
from repro.orchestrate.sched.journal import Journal

__all__ = ["Coordinator", "JobTicket", "Lease",
           "PENDING", "READY", "LEASED", "DONE", "FAILED", "SKIPPED"]

PENDING = "pending"
READY = "ready"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
SKIPPED = "skipped"

#: Terminal states (no further transitions).
TERMINAL = frozenset({DONE, FAILED, SKIPPED})

Emit = Callable[..., None]


@dataclass
class Lease:
    """One grant of one job to one worker, with a heartbeat deadline."""

    id: str
    job: str
    worker: str
    granted_at: float
    deadline: float
    stolen: bool = False


class JobTicket:
    """Completion handle for a dynamically submitted job (serve mode)."""

    def __init__(self, record: "_Record") -> None:
        self._record = record
        self._event = threading.Event()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    @property
    def status(self) -> str:
        return self._record.state

    @property
    def error(self) -> str | None:
        return self._record.error

    @property
    def elapsed_s(self) -> float:
        return self._record.elapsed_s

    @property
    def max_rss_kb(self) -> int:
        return self._record.max_rss_kb


@dataclass
class _Record:
    """Everything the coordinator tracks about one job."""

    job: Job | None
    name: str
    key: str
    index: int
    dep_keys: dict[str, str] = field(default_factory=dict)
    state: str = PENDING
    waiting_on: set[str] = field(default_factory=set)
    dependents: list[str] = field(default_factory=list)
    leases: dict[str, Lease] = field(default_factory=dict)
    attempts: int = 0
    requeues: int = 0
    committed_by: str | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    max_rss_kb: int = 0
    pre_resolved: str | None = None  # "hit" | "resumed" for non-run jobs
    tickets: list[JobTicket] = field(default_factory=list)


class Coordinator:
    """Thread-safe lease/commit arbiter over a dynamic job table.

    Args:
        lease_ttl_s: heartbeat deadline extension; a lease silent for
            this long is considered lost and its job re-queued.
        steal: allow a second (speculative) lease on a straggler.
        steal_after_s: lease age before a job becomes stealable
            (default ``2 * lease_ttl_s``).
        max_requeues: infrastructure-failure cap — a job whose leases
            keep expiring (e.g. it kills every worker that hosts it) is
            failed after this many re-queues rather than looping forever.
        journal: optional :class:`Journal` receiving lease/commit/fail
            records (shard = the worker id that triggered the event).
        persistent: serve mode — idle ``request``s get ``wait`` instead
            of ``stop``; the table accepts submissions forever.
        emit: optional structured-event sink (``emit(event, **fields)``).
    """

    def __init__(self, *, lease_ttl_s: float = 15.0, steal: bool = True,
                 steal_after_s: float | None = None, max_requeues: int = 5,
                 journal: Journal | None = None, persistent: bool = False,
                 emit: Emit | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.lease_ttl_s = float(lease_ttl_s)
        self.steal = steal
        self.steal_after_s = (float(steal_after_s) if steal_after_s
                              is not None else 2.0 * self.lease_ttl_s)
        self.max_requeues = int(max_requeues)
        self.journal = journal
        self.persistent = persistent
        self._emit = emit
        self._clock = clock
        self._lock = threading.RLock()
        self._records: dict[str, _Record] = {}
        self._ready: list[str] = []  # kept sorted by topological index
        self._lease_seq = 0
        self._index_seq = 0
        self._stopping = False
        self.counters: dict[str, int] = {
            "leases": 0, "stolen": 0, "expired": 0, "requeues": 0,
            "commits": 0, "dup_commits": 0, "late_commits": 0,
            "heartbeats": 0, "failures": 0, "skipped": 0,
        }

    # ------------------------------------------------------------------
    # table construction / dynamic submission

    def mark_done(self, name: str, key: str, *, how: str = "hit",
                  elapsed_s: float = 0.0) -> None:
        """Register a job as already satisfied (cache hit / journal resume).

        Dependents gate on it like any other done job, and workers are
        never asked to run it.
        """
        with self._lock:
            record = self._register(None, name, key, {})
            record.pre_resolved = how
            record.elapsed_s = elapsed_s
            self._finish(record, DONE)

    def add_job(self, job: Job, key: str,
                dep_keys: Mapping[str, str] | None = None, *,
                gate_on_deps: bool = True) -> JobTicket:
        """Add one job; returns a ticket that fires on any terminal state.

        In DAG mode callers add jobs in topological order with
        ``gate_on_deps=True``: the job waits for every dep that is a
        known, non-terminal record.  Serve mode resolves dependencies
        upstream and submits with ``gate_on_deps=False`` (``dep_keys``
        still travel to the worker for input loading).
        """
        with self._lock:
            existing = self._records.get(job.name)
            if existing is not None:
                # repeat submission (serve): same work, share the record
                ticket = JobTicket(existing)
                existing.tickets.append(ticket)
                if existing.state in TERMINAL:
                    ticket._event.set()
                return ticket
            record = self._register(job, job.name, key, dict(dep_keys or {}))
            ticket = JobTicket(record)
            record.tickets.append(ticket)
            if gate_on_deps:
                bad = False
                for dep in job.deps:
                    upstream = self._records.get(dep)
                    if upstream is None:
                        continue  # satisfied outside the table
                    upstream.dependents.append(record.name)
                    if upstream.state in (FAILED, SKIPPED):
                        bad = True
                    elif upstream.state != DONE:
                        record.waiting_on.add(dep)
                if bad:
                    self._skip(record)
                    return ticket
            if not record.waiting_on:
                self._make_ready(record)
            return ticket

    def submit(self, job: Job, key: str,
               dep_keys: Mapping[str, str] | None = None) -> JobTicket:
        """Serve-mode entry point: dependencies were resolved upstream."""
        return self.add_job(job, key, dep_keys, gate_on_deps=False)

    def _register(self, job: Job | None, name: str, key: str,
                  dep_keys: dict[str, str]) -> _Record:
        if name in self._records:
            raise ValueError(f"job {name!r} already registered")
        record = _Record(job=job, name=name, key=key,
                         index=self._index_seq, dep_keys=dep_keys)
        self._index_seq += 1
        self._records[name] = record
        return record

    # ------------------------------------------------------------------
    # protocol handler (transport-facing)

    def handle(self, message: dict) -> dict:
        kind = message.get("type")
        with self._lock:
            if kind == "request":
                return self._grant(str(message.get("worker", "?")))
            if kind == "heartbeat":
                return self._heartbeat(message)
            if kind == "commit":
                return self._commit(message)
            if kind == "fail":
                return self._fail(message)
            if kind == "ping":
                return {"type": "ack"}
            return {"type": "error", "error": f"unknown message {kind!r}"}

    def tick(self) -> None:
        """Sweep expired leases without a worker request (monitor loop)."""
        with self._lock:
            self._sweep(self._clock())

    # -- request / lease ------------------------------------------------

    def _grant(self, worker: str) -> dict:
        now = self._clock()
        self._sweep(now)
        if self._stopping:
            return {"type": "stop"}
        if self._ready:
            record = self._records[self._ready.pop(0)]
            record.state = LEASED
            return self._lease_reply(record, worker, now, stolen=False)
        candidate = self._steal_candidate(worker, now)
        if candidate is not None:
            return self._lease_reply(candidate, worker, now, stolen=True)
        if self.persistent or not self.completed:
            return {"type": "wait"}
        return {"type": "stop"}

    def _steal_candidate(self, worker: str, now: float) -> _Record | None:
        if not self.steal:
            return None
        best: _Record | None = None
        best_rank: tuple[float, int] | None = None
        for record in self._records.values():
            if record.state != LEASED or len(record.leases) != 1:
                continue
            lease = next(iter(record.leases.values()))
            if lease.worker == worker:
                continue  # never steal from yourself
            age = now - lease.granted_at
            if age < self.steal_after_s:
                continue
            rank = (age, -record.index)  # oldest first, then lowest index
            if best_rank is None or rank > best_rank:
                best, best_rank = record, rank
        return best

    def _lease_reply(self, record: _Record, worker: str, now: float, *,
                     stolen: bool) -> dict:
        self._lease_seq += 1
        lease = Lease(id=f"{record.name}~{self._lease_seq}",
                      job=record.name, worker=worker, granted_at=now,
                      deadline=now + self.lease_ttl_s, stolen=stolen)
        record.leases[lease.id] = lease
        record.attempts += 1
        self.counters["leases"] += 1
        if stolen:
            self.counters["stolen"] += 1
        self._journal(worker, {"event": "lease", "job": record.name,
                               "key": record.key, "lease_id": lease.id,
                               "stolen": stolen})
        self._note("lease_granted", job=record.name, worker=worker,
                   lease_id=lease.id, stolen=stolen)
        return {"type": "lease", "job": record.job, "key": record.key,
                "dep_keys": dict(record.dep_keys), "lease_id": lease.id,
                "ttl_s": self.lease_ttl_s}

    # -- heartbeat ------------------------------------------------------

    def _heartbeat(self, message: dict) -> dict:
        record = self._records.get(message.get("job", ""))
        lease = None if record is None else \
            record.leases.get(message.get("lease_id", ""))
        valid = (record is not None and lease is not None
                 and record.state == LEASED)
        if valid:
            lease.deadline = self._clock() + self.lease_ttl_s
            self.counters["heartbeats"] += 1
        return {"type": "ack", "valid": valid}

    # -- commit / fail --------------------------------------------------

    def _commit(self, message: dict) -> dict:
        name = message.get("job", "")
        worker = str(message.get("worker", "?"))
        record = self._records.get(name)
        if record is None:
            return {"type": "ack", "accepted": False}
        lease = record.leases.pop(message.get("lease_id", ""), None)
        if record.state in TERMINAL:
            self.counters["dup_commits"] += 1
            self._note("commit_rejected", job=name, worker=worker,
                       reason="duplicate")
            return {"type": "ack", "accepted": False}
        if lease is None:
            # the lease expired (lost heartbeats) but the worker survived
            # and its result is durably in the store — first commit wins
            self.counters["late_commits"] += 1
        record.elapsed_s = float(message.get("elapsed_s", 0.0))
        record.max_rss_kb = int(message.get("max_rss_kb", 0))
        record.committed_by = worker
        self.counters["commits"] += 1
        self._journal(worker, {"event": "commit", "job": name,
                               "key": record.key,
                               "lease_id": message.get("lease_id"),
                               "elapsed_s": record.elapsed_s})
        self._note("job_committed", job=name, worker=worker,
                   elapsed_s=record.elapsed_s)
        self._finish(record, DONE)
        return {"type": "ack", "accepted": True}

    def _fail(self, message: dict) -> dict:
        name = message.get("job", "")
        worker = str(message.get("worker", "?"))
        record = self._records.get(name)
        if record is None or record.state in TERMINAL:
            return {"type": "ack", "accepted": False}
        record.leases.pop(message.get("lease_id", ""), None)
        record.error = str(message.get("error", "unknown error"))
        self.counters["failures"] += 1
        self._journal(worker, {"event": "fail", "job": name,
                               "key": record.key, "error": record.error})
        self._note("job_failed", job=name, worker=worker,
                   error=record.error)
        self._finish(record, FAILED)
        return {"type": "ack", "accepted": True}

    # -- lease expiry ----------------------------------------------------

    def _sweep(self, now: float) -> None:
        for record in self._records.values():
            if record.state != LEASED:
                continue
            for lease_id in [lid for lid, lease in record.leases.items()
                             if lease.deadline < now]:
                lease = record.leases.pop(lease_id)
                self.counters["expired"] += 1
                self._note("lease_expired", job=record.name,
                           worker=lease.worker, lease_id=lease_id)
            if not record.leases:
                record.requeues += 1
                if record.requeues > self.max_requeues:
                    record.error = (f"lease expired {record.requeues} "
                                    f"times; giving up")
                    self._finish(record, FAILED)
                else:
                    self.counters["requeues"] += 1
                    record.state = READY
                    self._push_ready(record)
                    self._note("job_requeued", job=record.name,
                               requeues=record.requeues)

    # -- state transitions ----------------------------------------------

    def _make_ready(self, record: _Record) -> None:
        record.state = READY
        self._push_ready(record)

    def _push_ready(self, record: _Record) -> None:
        """Deterministic dispatch order: lowest topological index first."""
        self._ready.append(record.name)
        self._ready.sort(key=lambda name: self._records[name].index)

    def _finish(self, record: _Record, state: str) -> None:
        record.state = state
        record.leases.clear()
        if record.name in self._ready:
            self._ready.remove(record.name)
        for ticket in record.tickets:
            ticket._event.set()
        if state == DONE:
            for name in record.dependents:
                child = self._records[name]
                child.waiting_on.discard(record.name)
                if child.state == PENDING and not child.waiting_on:
                    self._make_ready(child)
        else:
            for name in record.dependents:
                child = self._records[name]
                if child.state not in TERMINAL:
                    self._skip(child)

    def _skip(self, record: _Record) -> None:
        self.counters["skipped"] += 1
        self._note("job_skipped", job=record.name)
        self._finish(record, SKIPPED)

    # ------------------------------------------------------------------
    # introspection / lifecycle

    @property
    def completed(self) -> bool:
        with self._lock:
            return all(record.state in TERMINAL
                       for record in self._records.values())

    def request_stop(self) -> None:
        """Drain: every subsequent worker request is answered ``stop``."""
        with self._lock:
            self._stopping = True

    def abort_remaining(self, reason: str) -> None:
        """Fail every non-terminal job (no workers left to run them)."""
        with self._lock:
            for record in list(self._records.values()):
                if record.state not in TERMINAL:
                    record.error = reason
                    self._finish(record, FAILED)

    def states(self) -> dict[str, str]:
        with self._lock:
            return {name: record.state
                    for name, record in self._records.items()}

    def outcomes(self) -> list[dict[str, Any]]:
        """Per-job account in registration (topological) order."""
        with self._lock:
            rows = []
            for record in sorted(self._records.values(),
                                 key=lambda r: r.index):
                status = {DONE: "ran", FAILED: "failed",
                          SKIPPED: "skipped"}.get(record.state,
                                                  record.state)
                if record.pre_resolved is not None:
                    status = "hit"
                rows.append({
                    "name": record.name, "key": record.key,
                    "status": status, "elapsed_s": record.elapsed_s,
                    "max_rss_kb": record.max_rss_kb,
                    "attempts": record.attempts,
                    "requeues": record.requeues,
                    "committed_by": record.committed_by,
                    "resolved": record.pre_resolved,
                    "error": record.error,
                })
            return rows

    # ------------------------------------------------------------------
    # helpers

    def _journal(self, shard: str, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(shard, record)

    def _note(self, event: str, **fields) -> None:
        if self._emit is not None:
            try:
                self._emit(event, **fields)
            except Exception:  # noqa: BLE001 - never fail scheduling on logging
                pass

    def records_snapshot(self) -> list[dict]:
        """Debug view (name, state, leases) — tests and ops tooling."""
        with self._lock:
            return [{"name": record.name, "state": record.state,
                     "leases": list(record.leases),
                     "requeues": record.requeues}
                    for record in sorted(self._records.values(),
                                         key=lambda r: r.index)]
