"""Distributed sharded sweep scheduling (see ``docs/orchestration.md``).

A work-queue scheduler that shards the fingerprinted job DAG across N
worker processes behind a pluggable transport:

* :mod:`~repro.orchestrate.sched.coordinator` — job states, leases with
  heartbeat deadlines, deterministic re-dispatch, work stealing, and
  exactly-once commit arbitration;
* :mod:`~repro.orchestrate.sched.transport` — in-process
  (:class:`LocalTransport`) and socket (:class:`SocketTransport`)
  transports; the latter reaches workers on other hosts;
* :mod:`~repro.orchestrate.sched.worker` — the stateless lease loop
  every shard runs;
* :mod:`~repro.orchestrate.sched.journal` — per-shard fsync'd JSONL
  crash-resume journals layered on the content-addressed store;
* :mod:`~repro.orchestrate.sched.scheduler` — the
  :class:`ShardScheduler` (one DAG run, used by
  ``Runner(scheduler="shard")`` / ``repro sweep --scheduler shard``)
  and the persistent :class:`ShardPool`
  (``repro serve --scheduler shard``).

Scheduling policy lives entirely in this package; job semantics stay in
:mod:`repro.orchestrate.job` — the coordinator never imports experiment
code.
"""

from __future__ import annotations

from repro.orchestrate.sched.coordinator import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    READY,
    SKIPPED,
    Coordinator,
    JobTicket,
    Lease,
)
from repro.orchestrate.sched.journal import Journal
from repro.orchestrate.sched.scheduler import (
    SchedReport,
    ShardPool,
    ShardScheduler,
)
from repro.orchestrate.sched.transport import (
    LocalTransport,
    SocketTransport,
    connect_socket,
)
from repro.orchestrate.sched.worker import WorkerLoop, shard_worker_main

__all__ = [
    "DONE",
    "FAILED",
    "LEASED",
    "PENDING",
    "READY",
    "SKIPPED",
    "Coordinator",
    "JobTicket",
    "Journal",
    "Lease",
    "LocalTransport",
    "SchedReport",
    "ShardPool",
    "ShardScheduler",
    "SocketTransport",
    "WorkerLoop",
    "connect_socket",
    "shard_worker_main",
]
