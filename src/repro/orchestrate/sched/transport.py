"""Pluggable coordinator<->worker transports.

The scheduler speaks a tiny request/reply protocol (plain dicts, see
:mod:`~repro.orchestrate.sched.coordinator`); a *transport* moves those
dicts between the coordinator and its workers.  Two implementations:

* :class:`LocalTransport` — in-process: a channel's ``rpc`` calls the
  coordinator handler directly.  Used by thread-mode workers (property
  tests, unit tests) where process isolation is unnecessary.
* :class:`SocketTransport` — ``multiprocessing.connection`` over a
  loopback TCP socket with an authkey handshake.  Worker *processes*
  connect by ``(address, authkey)``, which pickle cleanly into a spawn
  context — and, because the address is a plain TCP endpoint, the same
  transport reaches workers on other hosts once the store is shared.

The coordinator side binds a handler (``dict -> dict``); the worker side
obtains a channel with a single blocking ``rpc(dict) -> dict``.  Handlers
must be thread-safe: the socket transport serves each connection on its
own thread.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Client, Connection, Listener
from typing import Callable

__all__ = ["LocalTransport", "SocketTransport", "connect_socket"]

Handler = Callable[[dict], dict]


class _LocalChannel:
    """Worker-side channel that invokes the bound handler in-process."""

    def __init__(self, transport: "LocalTransport") -> None:
        self._transport = transport

    def rpc(self, message: dict) -> dict:
        handler = self._transport._handler
        if handler is None:
            raise ConnectionError("transport is not bound")
        return handler(message)

    def close(self) -> None:
        return None


class LocalTransport:
    """In-process transport: channels call the handler directly."""

    def __init__(self) -> None:
        self._handler: Handler | None = None

    def bind(self, handler: Handler) -> None:
        self._handler = handler

    def connect(self) -> _LocalChannel:
        return _LocalChannel(self)

    @property
    def address(self):
        return None

    def close(self) -> None:
        self._handler = None


class _SocketChannel:
    """Worker-side channel over one ``multiprocessing`` connection.

    ``rpc`` is serialised with a lock: the worker's main loop and its
    heartbeat thread share the single connection.
    """

    def __init__(self, connection: Connection) -> None:
        self._connection = connection
        self._lock = threading.Lock()

    def rpc(self, message: dict) -> dict:
        with self._lock:
            self._connection.send(message)
            return self._connection.recv()

    def close(self) -> None:
        try:
            self._connection.close()
        except OSError:
            pass


def connect_socket(address, authkey: bytes) -> _SocketChannel:
    """Open a worker channel to a bound :class:`SocketTransport`."""
    return _SocketChannel(Client(address, authkey=authkey))


class SocketTransport:
    """Loopback-TCP request/reply server, one thread per worker."""

    def __init__(self, host: str = "127.0.0.1",
                 authkey: bytes | None = None) -> None:
        import secrets

        self.authkey = authkey if authkey is not None else \
            secrets.token_bytes(16)
        self._listener = Listener((host, 0), authkey=self.authkey)
        self._handler: Handler | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._closing = False

    @property
    def address(self):
        return self._listener.address

    def bind(self, handler: Handler) -> None:
        self._handler = handler
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sched-accept", daemon=True)
        self._accept_thread.start()

    def connect(self) -> _SocketChannel:
        return connect_socket(self.address, self.authkey)

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                connection = self._listener.accept()
            except (OSError, EOFError, Exception):  # noqa: BLE001
                # closed listener, or a failed authkey handshake from a
                # dying client — keep accepting unless we are closing
                if self._closing:
                    return
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,),
                name="sched-conn", daemon=True)
            thread.start()
            self._conn_threads.append(thread)

    def _serve_connection(self, connection: Connection) -> None:
        with connection:
            while True:
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    return  # worker exited (or was SIGKILLed) mid-poll
                handler = self._handler
                if handler is None:
                    return
                try:
                    reply = handler(message)
                except Exception as error:  # noqa: BLE001 - surface it
                    reply = {"type": "error",
                             "error": f"{type(error).__name__}: {error}"}
                try:
                    connection.send(reply)
                except (OSError, BrokenPipeError):
                    return

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._conn_threads:
            thread.join(timeout=1.0)
        self._handler = None
