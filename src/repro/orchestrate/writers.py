"""Pure renderers used by orchestrated jobs to materialise artifacts.

These produce byte-for-byte the text the benchmark harness has always
written under ``results/`` (see ``benchmarks/conftest.py``), so the same
file is identical whichever path — ``pytest benchmarks/`` or
``repro sweep`` — regenerated it last.
"""

from __future__ import annotations

from repro.experiments.render import render_figure, render_table

__all__ = ["join_figures", "render_subblock"]


def join_figures(inputs: dict) -> str:
    """All input figures rendered in name order, blank-line separated."""
    return "\n\n".join(
        render_figure(inputs[name]) for name in sorted(inputs))


def render_subblock(rows) -> str:
    """The Section-4 sub-block table, titled as the bench writes it."""
    table = render_table(
        ["P", "b1", "b2", "prime util", "prime conflicts",
         "direct conflicts"],
        [[r.leading_dimension, r.b1, r.b2, r.prime_utilization,
          r.prime_conflicts, r.direct_conflicts] for r in rows],
    )
    return "Sub-block study (C = 127 prime vs 128 direct)\n" + table
