"""The experiment graph: every reproduction target as an orchestrated job.

This registry is the single source of truth for what ``repro sweep``
runs: the nine paper figures, the four extension figures, the Section-4
sub-block study, the nine ablations, the four cache-zoo studies
(docs/cache-zoo.md), the machine-measured figure variants, and the
assembled reproduction report.  Each job declares the
source modules its numbers depend on, so the content-addressed cache
invalidates exactly the results a code change can move — and nothing
else.

Selections:

* :func:`default_sweep` — the full figure set (everything above).
* :func:`smoke_sweep` — two small machine-measured figure jobs used by
  CI to exercise the cold-run → warm-cache path in seconds.
* ``validation`` — the analytics-vs-simulation grid; not part of the
  default sweep (``repro report --simulate`` schedules it).
"""

from __future__ import annotations

from pathlib import Path

from repro.orchestrate.job import Job

__all__ = [
    "RESULTS_DIR",
    "all_jobs",
    "default_sweep",
    "figure_job_names",
    "smoke_sweep",
]

#: The repo's committed results directory (…/repro/results).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Analytical figures: figure id -> implementing function name.
_FIGURE_FNS = {
    "fig4": "figure4",
    "fig5": "figure5",
    "fig6": "figure6",
    "fig7": "figure7",
    "fig8": "figure8",
    "fig9": "figure9",
    "fig10": "figure10",
    "fig11a": "figure11a",
    "fig11b": "figure11b",
}

#: Extension figures: figure id -> implementing function name.
_EXTENSION_FNS = {
    "ext-assoc": "extension_associativity",
    "ext-missratio": "extension_missratio",
    "ext-bandwidth": "extension_bandwidth",
    "ext-utilization": "extension_utilization",
}

_ABLATION_STEMS = (
    "ablation_associativity",
    "ablation_interleave",
    "ablation_linesize",
    "ablation_mappings",
    "ablation_prefetch",
    "ablation_prime_linesize",
    "ablation_replacement",
    "ablation_sensitivity",
    "ablation_victim",
)

#: Module scopes folded into cache keys, per job family.
_ANALYTICAL = ("repro.analytical",)
_SIMULATED = ("repro.analytical", "repro.cache", "repro.memory",
              "repro.machine", "repro.experiments.figures",
              "repro.experiments.stats")
_ABLATION = ("repro.analytical", "repro.cache", "repro.memory",
             "repro.machine", "repro.trace")
_ZOO = ("repro.analytical", "repro.cache", "repro.machine",
        "repro.trace", "repro.workloads", "repro.experiments.cache_zoo")

#: Cache-zoo studies (docs/cache-zoo.md): job name -> study function.
_ZOO_FNS = {
    "zoo-bicameral-vs-prime": "zoo_bicameral_vs_prime",
    "zoo-hashed-collision": "zoo_hashed_collision",
    "zoo-hierarchy": "zoo_hierarchy",
    "zoo-irregular": "zoo_irregular",
}


def figure_job_names() -> tuple[str, ...]:
    """The analytical paper-figure jobs (claim checks apply to these)."""
    return tuple(_FIGURE_FNS)


def all_jobs() -> dict[str, Job]:
    """Build the full registry, name -> :class:`Job`."""
    from repro.experiments.simulated_figures import (
        CANONICAL_FIG7_SIMULATED,
        CANONICAL_FIG8_SIMULATED,
    )

    jobs: list[Job] = []

    for figure_id, fn_name in _FIGURE_FNS.items():
        jobs.append(Job(
            name=figure_id,
            fn=f"repro.experiments.figures:{fn_name}",
            modules=_ANALYTICAL,
            render="repro.experiments.render:render_figure",
            artifact=f"{figure_id}.txt",
        ))

    for figure_id, fn_name in _EXTENSION_FNS.items():
        jobs.append(Job(
            name=figure_id,
            fn=f"repro.experiments.extension_figures:{fn_name}",
            modules=_ANALYTICAL + ("repro.experiments.figures",),
        ))
    jobs.append(Job(
        name="extension-figures",
        fn="repro.orchestrate.writers:join_figures",
        deps=tuple(_EXTENSION_FNS),
        modules=("repro.experiments.render",),
        artifact="extension_figures.txt",
    ))

    jobs.append(Job(
        name="subblock",
        fn="repro.experiments.subblock_study:subblock_study",
        modules=("repro.analytical.subblock",),
        render="repro.orchestrate.writers:render_subblock",
        artifact="subblock.txt",
    ))

    for job_name, fn_name in _ZOO_FNS.items():
        jobs.append(Job(
            name=job_name,
            fn=f"repro.experiments.cache_zoo:{fn_name}",
            modules=_ZOO,
            render="repro.experiments.ablations:render_ablation",
            artifact=f"{job_name.replace('-', '_')}.txt",
        ))

    for stem in _ABLATION_STEMS:
        jobs.append(Job(
            name=stem.replace("_", "-"),
            fn=f"repro.experiments.ablations:{stem}",
            modules=_ABLATION,
            render="repro.experiments.ablations:render_ablation",
            artifact=f"{stem}.txt",
        ))

    jobs.append(Job(
        name="fig7-simulated",
        fn="repro.experiments.simulated_figures:figure7_simulated",
        params=dict(CANONICAL_FIG7_SIMULATED),
        modules=_SIMULATED,
        render="repro.experiments.render:render_figure",
        artifact="fig7_simulated.txt",
    ))
    jobs.append(Job(
        name="fig8-simulated",
        fn="repro.experiments.simulated_figures:figure8_simulated",
        params=dict(CANONICAL_FIG8_SIMULATED),
        modules=_SIMULATED,
        render="repro.experiments.render:render_figure",
        artifact="fig8_simulated.txt",
    ))

    jobs.append(Job(
        name="report",
        fn="repro.experiments.report:report_from_inputs",
        deps=tuple(_FIGURE_FNS) + tuple(_EXTENSION_FNS) + ("subblock",),
        modules=("repro.experiments.checks", "repro.experiments.render"),
        artifact="reproduction_report.md",
    ))

    # design-space optimizer (ROADMAP item 5): surrogate sweep + Pareto
    # front, then top-K re-scored on the cycle-level machines.  Default
    # params are the CI-sized grid; ``repro optimize`` overrides them
    # from its flags (the cache key folds params, so variants coexist).
    jobs.append(Job(
        name="optimize-search",
        fn="repro.experiments.optimizer:optimize_search",
        params={"max_area_words": 10000, "max_banks": 64, "top_k": 8},
        modules=_ANALYTICAL,
    ))
    jobs.append(Job(
        name="optimize-verify",
        fn="repro.experiments.optimizer:verify_front",
        params={"top_k": 3, "seeds": 2, "blocks": 4},
        deps=("optimize-search",),
        modules=_SIMULATED,
    ))

    jobs.append(Job(
        name="validation",
        fn="repro.experiments.validation:validation_grid",
        params={"t_m_values": (8, 16), "blocks": (512, 2048), "seeds": 3},
        modules=_SIMULATED,
    ))

    # CI smoke pair: tiny machine-measured figure points, heavy enough
    # (a few seconds) that the warm-cache speedup is unambiguous
    jobs.append(Job(
        name="smoke-fig7-simulated",
        fn="repro.experiments.simulated_figures:figure7_simulated",
        params={"t_m_values": (8, 32, 64), "seeds": 1, "blocks": 2},
        modules=_SIMULATED,
    ))
    jobs.append(Job(
        name="smoke-fig8-simulated",
        fn="repro.experiments.simulated_figures:figure8_simulated",
        params={"block_values": (256, 1024), "seeds": 1, "blocks": 2},
        modules=_SIMULATED,
    ))
    jobs.append(Job(
        name="smoke-zoo-hashed",
        fn="repro.experiments.cache_zoo:zoo_hashed_collision",
        params={"set_counts": (16, 64), "fills": (0.5, 1.0),
                "sim_seeds": 2, "law_seeds": 256},
        modules=_ZOO,
        render="repro.experiments.ablations:render_ablation",
        artifact="smoke_zoo_hashed.txt",
    ))

    return {job.name: job for job in jobs}


#: Jobs kept out of the default sweep: scheduled on demand only.
_NON_DEFAULT = ("validation", "optimize-search", "optimize-verify",
                "smoke-fig7-simulated", "smoke-fig8-simulated",
                "smoke-zoo-hashed")


def default_sweep() -> tuple[str, ...]:
    """The full-figure-set selection ``repro sweep`` runs by default."""
    return tuple(name for name in all_jobs() if name not in _NON_DEFAULT)


def smoke_sweep() -> tuple[str, ...]:
    """The CI smoke selection: two figure points plus one zoo study."""
    return ("smoke-fig7-simulated", "smoke-fig8-simulated",
            "smoke-zoo-hashed")
