"""The content-addressed on-disk result cache.

Layout (under ``~/.cache/repro`` by default, ``REPRO_CACHE_DIR`` or
``--cache-dir`` to relocate)::

    <root>/objects/<key[:2]>/<key>.pkl   # pickle of {"meta": ..., "result": ...}
    <root>/logs/…                        # JSONL run logs (see runlog.py)

Entries are written atomically and durably (temp file + ``fsync`` +
``os.replace``), so a sweep killed mid-write — or a machine losing power
right after the rename — never leaves a half entry; the resume pass
simply recomputes the missing key.  Temp files orphaned by a hard-killed
writer are swept when the store is opened (only once they are old enough
that no live writer can still own them).

Reads distinguish *content corruption* (truncated pickle, garbage bytes,
wrong schema) from *transient environment failures* (permissions, EIO, a
concurrent reader exhausting descriptors).  Corruption evicts the entry
so the job recomputes cleanly; transient failures are reported as a
plain miss and the entry is left in place for the next reader — several
processes may share one store concurrently.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = ["STALE_TEMP_AGE_S", "CacheEntry", "ResultStore",
           "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheEntry:
    """One cached result plus its provenance metadata."""

    key: str
    result: Any
    meta: dict


#: Exceptions that mean the entry's *content* is corrupt (the documented
#: unpickling failure modes, plus the schema lookups below).  Anything
#: else — PermissionError, EIO, EMFILE — may be transient and must not
#: evict a good entry out from under concurrent readers.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
)

#: Temp files younger than this are presumed to belong to a live writer
#: and are left alone by the open-time sweep.
STALE_TEMP_AGE_S = 3600.0


class ResultStore:
    """Content-addressed pickle store; safe against corrupt entries and
    concurrent multi-process use."""

    def __init__(self, root: Path | None = None, *,
                 sweep_stale: bool = True,
                 stale_temp_age_s: float = STALE_TEMP_AGE_S) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stale_temp_age_s = stale_temp_age_s
        if sweep_stale:
            self.sweep_stale_temps()

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def sweep_stale_temps(self) -> list[Path]:
        """Remove orphaned ``.<key[:8]>-*`` temp files from dead writers.

        A process hard-killed between creating its temp file and the
        ``os.replace`` leaks the temp forever.  Anything older than
        ``stale_temp_age_s`` cannot belong to a live write (writes are
        seconds, not hours), so it is safe to unlink; younger files are
        left for their (possibly live) owners.  Returns what it removed.
        """
        removed: list[Path] = []
        if not self.objects_dir.exists():
            return removed
        cutoff = time.time() - self.stale_temp_age_s
        for path in self.objects_dir.glob("??/.*"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed.append(path)
            except OSError:
                pass  # raced with another sweep or the owner's replace
        return removed

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> CacheEntry | None:
        """Fetch an entry; corruption evicts, transient failures miss."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return CacheEntry(key=key, result=payload["result"],
                              meta=dict(payload["meta"]))
        except FileNotFoundError:
            return None
        except _CORRUPTION_ERRORS:
            self.discard(key)
            return None
        except Exception:  # noqa: BLE001 - transient (perms, EIO, ...)
            # the entry may be perfectly good; leave it for the next
            # reader and let the caller recompute this once
            return None

    def save(self, key: str, result: Any, meta: dict) -> Path:
        """Atomically and durably persist one entry; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {"key": key, "stored_at": time.time(), **meta}
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{key[:8]}-", delete=False)
        try:
            with handle:
                pickle.dump({"meta": meta, "result": result}, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                # a crash after os.replace must not surface a zero-length
                # or partial entry: the bytes go to disk before the rename
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass  # a concurrent sweep may have taken it already
            raise
        return path

    def discard(self, key: str) -> None:
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def keys(self) -> Iterator[str]:
        if not self.objects_dir.exists():
            return
        for path in sorted(self.objects_dir.glob("??/*.pkl")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
