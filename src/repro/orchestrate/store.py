"""The content-addressed on-disk result cache.

Layout (under ``~/.cache/repro`` by default, ``REPRO_CACHE_DIR`` or
``--cache-dir`` to relocate)::

    <root>/objects/<key[:2]>/<key>.pkl   # pickle of {"meta": ..., "result": ...}
    <root>/logs/…                        # JSONL run logs (see runlog.py)

Entries are written atomically (temp file + ``os.replace``), so a sweep
killed mid-write never leaves a half entry — the resume pass simply
recomputes the missing key.  Reads treat *any* load failure (truncated
pickle, wrong schema, unreadable file) as a miss: the entry is discarded
and the job recomputed, never crashed on.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CacheEntry", "ResultStore", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheEntry:
    """One cached result plus its provenance metadata."""

    key: str
    result: Any
    meta: dict


class ResultStore:
    """Content-addressed pickle store; safe against corrupt entries."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> CacheEntry | None:
        """Fetch an entry; any failure is a miss and evicts the file."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return CacheEntry(key=key, result=payload["result"],
                              meta=dict(payload["meta"]))
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - corrupt entry == miss
            self.discard(key)
            return None

    def save(self, key: str, result: Any, meta: dict) -> Path:
        """Atomically persist one entry; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {"key": key, "stored_at": time.time(), **meta}
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=path.parent, prefix=f".{key[:8]}-", delete=False)
        try:
            with handle:
                pickle.dump({"meta": meta, "result": result}, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path

    def discard(self, key: str) -> None:
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def keys(self) -> Iterator[str]:
        if not self.objects_dir.exists():
            return
        for path in sorted(self.objects_dir.glob("??/*.pkl")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
