"""Experiment orchestration: a job-graph runner with a result cache.

The experiment layer used to be a pile of scripts, each recomputing from
scratch and serialising its own ``results/*.txt``.  This package turns
it into a service (see ``docs/orchestration.md``):

* :mod:`~repro.orchestrate.job` — a :class:`Job` is a pure function +
  parameter dict + declared inputs + fingerprinted source modules;
* :mod:`~repro.orchestrate.fingerprint` — stable content-addressed
  cache keys (params + code fingerprint + dependency keys);
* :mod:`~repro.orchestrate.store` — the on-disk cache
  (``~/.cache/repro`` or ``--cache-dir``), atomic and corruption-safe;
* :mod:`~repro.orchestrate.runner` — dependency-ordered scheduling,
  ``ProcessPoolExecutor`` parallelism, per-job timing/memory metrics,
  JSONL run logs, crash-resumability;
* :mod:`~repro.orchestrate.sched` — the distributed shard scheduler
  behind ``--scheduler shard``: a lease-based coordinator, stateless
  workers over pluggable transports, work stealing, fsynced per-shard
  journals for crash resume;
* :mod:`~repro.orchestrate.jobs` — the registry of every experiment:
  figures, extension figures, ablations, simulated figures, the
  sub-block study, the reproduction report.

``repro sweep`` is the CLI face of this package.
"""

from __future__ import annotations

from repro.orchestrate.fingerprint import (
    FingerprintCache,
    cache_key,
    module_fingerprint,
)
from repro.orchestrate.job import Job, resolve
from repro.orchestrate.jobs import (
    RESULTS_DIR,
    all_jobs,
    default_sweep,
    figure_job_names,
    smoke_sweep,
)
from repro.orchestrate.runlog import RunLog, read_events
from repro.orchestrate.runner import JobOutcome, Runner, RunSummary
from repro.orchestrate.store import CacheEntry, ResultStore, default_cache_dir

__all__ = [
    "CacheEntry",
    "FingerprintCache",
    "Job",
    "JobOutcome",
    "RESULTS_DIR",
    "RunLog",
    "RunSummary",
    "Runner",
    "ResultStore",
    "all_jobs",
    "cache_key",
    "compute_figures",
    "default_cache_dir",
    "default_sweep",
    "figure_job_names",
    "module_fingerprint",
    "read_events",
    "resolve",
    "smoke_sweep",
]


def compute_figures(store: ResultStore | None = None) -> dict:
    """Every analytical figure, answered from the orchestrated cache.

    This is the path ``repro verify``'s golden comparison reads, so a
    verification pass prices figure regeneration at one cache lookup
    once a sweep has run.  Correctness guard: while a catalogued fault
    is injected (``repro verify --mutate`` / the mutation self-check),
    the cache is bypassed *and not written*, so a mutated run can
    neither read stale un-mutated results nor poison the store with
    mutated ones.
    """
    from repro.verify.mutations import mutation_active

    names = figure_job_names()
    if mutation_active():
        jobs = all_jobs()
        return {name: jobs[name].execute() for name in names}
    runner = Runner(all_jobs().values(), store=store)
    summary = runner.run(names)
    return {name: summary.results[name] for name in names}
