"""Cache keys: a stable hash of job name, params, code, and inputs.

The key for a job folds together

* the job ``name`` and ``fn`` reference,
* the parameter dict, canonicalised to sorted-key JSON (tuples become
  lists, so ``(8, 16)`` and ``[8, 16]`` key identically — they call
  identically too),
* a *code fingerprint*: the SHA-256 of every ``.py`` source file of
  every module/package in the job's fingerprint scope, and
* the cache keys of the job's dependencies, so invalidation propagates
  down the graph without timestamps or mtimes.

Everything is content-addressed: there is no invalidation bookkeeping
to corrupt, and two checkouts of the same code at the same params share
keys.  ``KEY_SCHEMA_VERSION`` is folded in as well, so a change to the
key recipe itself retires every old entry at once.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path
from typing import Any, Mapping

from repro.orchestrate.job import Job

__all__ = [
    "KEY_SCHEMA_VERSION",
    "FingerprintCache",
    "cache_key",
    "canonical_params",
    "module_fingerprint",
]

#: Bump to retire every existing cache entry (key recipe change).
KEY_SCHEMA_VERSION = 1


def canonical_params(params: Mapping[str, Any]) -> str:
    """Sorted-key JSON with tuples coerced to lists; rejects the rest."""

    def default(value):
        if isinstance(value, tuple):
            return list(value)
        raise TypeError(
            f"job parameter of type {type(value).__name__} is not "
            f"cache-keyable; use JSON-representable values")

    return json.dumps(params, sort_keys=True, default=default,
                      separators=(",", ":"))


def _source_files(module_name: str) -> list[Path]:
    """Every ``.py`` file implementing ``module_name`` (pkg or module)."""
    spec = importlib.util.find_spec(module_name)
    if spec is None:
        raise ModuleNotFoundError(
            f"cannot fingerprint {module_name!r}: module not found")
    if spec.submodule_search_locations:
        files: list[Path] = []
        for location in spec.submodule_search_locations:
            files.extend(Path(location).rglob("*.py"))
        return sorted(set(files))
    if spec.origin is None or not spec.origin.endswith(".py"):
        # builtin / extension module: key on the name alone
        return []
    return [Path(spec.origin)]


def module_fingerprint(module_name: str) -> str:
    """SHA-256 over the sorted source files of one module or package."""
    digest = hashlib.sha256()
    for path in _source_files(module_name):
        digest.update(path.name.encode())
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
    return digest.hexdigest()


class FingerprintCache:
    """Memoises :func:`module_fingerprint` for one run.

    A sweep fingerprints the same packages for many jobs; hashing each
    once per run keeps key computation off the critical path while still
    observing source edits *between* runs.
    """

    def __init__(self) -> None:
        self._digests: dict[str, str] = {}

    def get(self, module_name: str) -> str:
        if module_name not in self._digests:
            self._digests[module_name] = module_fingerprint(module_name)
        return self._digests[module_name]


def cache_key(job: Job, dep_keys: Mapping[str, str] | None = None,
              fingerprints: FingerprintCache | None = None) -> str:
    """The content-addressed key of one job.

    Args:
        job: the job.
        dep_keys: cache key of every job in ``job.deps`` (required when
            the job has deps — keys must be computed in dependency order).
        fingerprints: optional shared memo for module fingerprints.
    """
    fingerprints = fingerprints or FingerprintCache()
    dep_keys = dict(dep_keys or {})
    missing = [d for d in job.deps if d not in dep_keys]
    if missing:
        raise ValueError(f"job {job.name!r}: missing dep keys {missing}")
    payload = {
        "v": KEY_SCHEMA_VERSION,
        "name": job.name,
        "fn": job.fn,
        "params": canonical_params(job.params),
        "deps": {name: dep_keys[name] for name in sorted(job.deps)},
        "code": {name: fingerprints.get(name)
                 for name in job.fingerprint_scope()},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
