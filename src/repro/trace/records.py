"""Address traces: the lingua franca between workloads and caches.

A :class:`Trace` is an ordered sequence of word-granular memory references
with optional read/write flags, tagged with a human-readable description of
the access pattern that produced it.  Pattern generators
(:mod:`repro.trace`) and real kernels (:mod:`repro.workloads`) both emit
traces; :mod:`repro.trace.replay` feeds them to cache models and the
machine simulators.

Storage is **columnar**: the reference stream lives in chunked ``int64``
numpy address buffers paired with packed write-flag bitmaps (one bit per
reference, absent entirely for all-read chunks), not in per-reference
objects.  :meth:`Trace.append_block` is the primary recording API — one
call per address block — and :meth:`Trace.iter_blocks` hands the sealed
chunks to replay consumers zero-copy.  The per-:class:`Access` surface
(``append``, iteration, the ``accesses`` view) is kept as a compatibility
layer materialised lazily on demand; it is exact but costs one object per
reference, so hot paths should stay on the block API.  See
``docs/trace-engine.md`` for the full layout story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Access", "Trace"]

#: Sealed-chunk target: small appended blocks are coalesced until the
#: staging area reaches this many references, so replay consumers always
#: see batch-friendly chunks no matter how fine-grained generation was.
_CHUNK_TARGET = 1 << 16

#: Merged descriptions stop growing past this length (a trailing marker
#: is added once); extend() must not turn provenance into a novel.
_DESCRIPTION_CAP = 160


@dataclass(frozen=True)
class Access:
    """One memory reference.

    Attributes:
        address: word-granular address.
        write: ``True`` for a store.
    """

    address: int
    write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("addresses must be non-negative")


def _unpack(bits: np.ndarray, count: int) -> np.ndarray:
    """Unpack a write bitmap back into a bool array of ``count`` flags."""
    return np.unpackbits(bits, count=count).view(bool)


class Trace:
    """An ordered reference stream with provenance, stored columnar.

    Attributes:
        description: what produced this trace (shown in reports).
        accesses: lazy list-of-:class:`Access` compatibility view.
    """

    def __init__(self, accesses: Iterable[Access] | None = None,
                 description: str = "") -> None:
        self.description = description
        self._chunks: list[np.ndarray] = []       # sealed int64 buffers
        self._bitmaps: list[np.ndarray | None] = []  # packed write flags
        self._small: list[tuple[np.ndarray, np.ndarray | None]] = []
        self._small_size = 0
        self._pend_addr: list[int] = []
        self._pend_write: list[bool] = []
        self._pend_has_write = False
        self._length = 0
        self._arrays_cache: tuple[np.ndarray, np.ndarray | None] | None = None
        self._view_cache: list[Access] | None = None
        if accesses:
            for access in accesses:
                self.append(access.address, write=access.write)

    # -- primary (columnar) API ------------------------------------------

    def append_block(self, addresses, *, write=False) -> None:
        """Record one address block — the hot-path recording primitive.

        Args:
            addresses: 1-D array-like of non-negative word addresses.  An
                ``int64`` numpy array is adopted zero-copy (the trace
                takes ownership; do not mutate it afterwards).
            write: ``False`` for an all-read block, ``True`` for an
                all-store block, or a bool array flagging the stores.

        Raises:
            ValueError: on negative addresses or a flag-length mismatch.
        """
        block = np.asarray(addresses, dtype=np.int64)
        if block.ndim != 1:
            block = block.reshape(-1)
        if block.size == 0:
            return
        if int(block.min()) < 0:
            raise ValueError("addresses must be non-negative")
        if isinstance(write, (bool, np.bool_)):
            flags = np.ones(block.size, dtype=bool) if write else None
        else:
            flags = np.asarray(write, dtype=bool)
            if flags.ndim != 1:
                flags = flags.reshape(-1)
            if flags.size != block.size:
                raise ValueError("write flags must match addresses in length")
            if not flags.any():
                flags = None
        self._flush_pending()
        self._push_block(block, flags)
        self._length += block.size
        self._invalidate()

    def iter_blocks(self) -> Iterator[tuple[np.ndarray, np.ndarray | None]]:
        """Yield ``(addresses, writes)`` chunks for streaming replay.

        Addresses are the sealed internal ``int64`` buffers, zero-copy;
        ``writes`` is a bool array or ``None`` for an all-read chunk.
        Consumers must treat both as read-only.
        """
        self._seal()
        for chunk, bitmap in zip(self._chunks, self._bitmaps):
            if bitmap is None:
                yield chunk, None
            else:
                yield chunk, _unpack(bitmap, chunk.size)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The whole trace as numpy arrays for the batched replay path.

        Returns ``(addresses, writes)`` — an ``int64`` address array plus
        a bool write-flag array, or ``None`` in place of the flags for an
        all-read trace (the common case, which lets replays skip per-access
        write handling entirely).  Built in a single pass over the chunks
        and cached until the trace is next mutated; treat as read-only.
        """
        if self._arrays_cache is None:
            self._seal()
            if not self._chunks:
                self._arrays_cache = (np.empty(0, dtype=np.int64), None)
            elif len(self._chunks) == 1:
                chunk, bitmap = self._chunks[0], self._bitmaps[0]
                writes = None if bitmap is None else _unpack(bitmap, chunk.size)
                self._arrays_cache = (chunk, writes)
            else:
                addresses = np.concatenate(self._chunks)
                if all(bitmap is None for bitmap in self._bitmaps):
                    writes = None
                else:
                    writes = np.zeros(addresses.size, dtype=bool)
                    offset = 0
                    for chunk, bitmap in zip(self._chunks, self._bitmaps):
                        if bitmap is not None:
                            writes[offset:offset + chunk.size] = _unpack(
                                bitmap, chunk.size)
                        offset += chunk.size
                self._arrays_cache = (addresses, writes)
        return self._arrays_cache

    # -- compatibility (per-Access) surface ------------------------------

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[int], *, write: bool = False, description: str = ""
    ) -> "Trace":
        """Build a read-only (or write-only) trace from raw addresses."""
        trace = cls(description=description)
        if isinstance(addresses, np.ndarray):
            block = addresses
        else:
            block = np.array(list(addresses), dtype=np.int64)
        trace.append_block(block, write=write)
        return trace

    def append(self, address: int, *, write: bool = False) -> None:
        """Record one reference (scalar compatibility path)."""
        address = int(address)
        if address < 0:
            raise ValueError("addresses must be non-negative")
        self._pend_addr.append(address)
        self._pend_write.append(bool(write))
        if write:
            self._pend_has_write = True
        self._length += 1
        self._invalidate()
        if len(self._pend_addr) >= _CHUNK_TARGET:
            self._flush_pending()

    def extend(self, other: "Trace") -> "Trace":
        """Concatenate another trace onto this one (returns self).

        Chunks are shared zero-copy (sealed buffers are never mutated),
        and the descriptions are merged rather than silently keeping only
        the left-hand one: an empty description adopts the other side's,
        and two distinct non-empty descriptions are joined (bounded, and
        without repeating a part already present).
        """
        self._seal()
        other._seal()
        self._chunks.extend(other._chunks)
        self._bitmaps.extend(other._bitmaps)
        self._length += other._length
        self._merge_description(other.description)
        self._invalidate()
        return self

    @property
    def accesses(self) -> list[Access]:
        """The reference list as :class:`Access` objects (lazy, read-only).

        Materialised on demand from the columnar store and cached until
        the next mutation; mutating the returned list does not change the
        trace.
        """
        if self._view_cache is None:
            addresses, writes = self.as_arrays()
            if writes is None:
                self._view_cache = [Access(a) for a in addresses.tolist()]
            else:
                self._view_cache = [
                    Access(a, w)
                    for a, w in zip(addresses.tolist(), writes.tolist())
                ]
        return self._view_cache

    def addresses(self) -> list[int]:
        """Just the address stream."""
        return self.as_arrays()[0].tolist()

    def reads(self) -> "Trace":
        """The read-only sub-trace."""
        addresses, writes = self.as_arrays()
        out = Trace(description=f"{self.description} (reads)")
        out.append_block(addresses if writes is None else addresses[~writes])
        return out

    def writes(self) -> "Trace":
        """The write-only sub-trace."""
        addresses, writes = self.as_arrays()
        out = Trace(description=f"{self.description} (writes)")
        if writes is not None:
            out.append_block(addresses[writes], write=True)
        return out

    def unique_addresses(self) -> set[int]:
        """Distinct addresses touched (the trace's working set)."""
        return set(np.unique(self.as_arrays()[0]).tolist())

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Access]:
        for chunk, flags in self.iter_blocks():
            if flags is None:
                for address in chunk.tolist():
                    yield Access(address)
            else:
                for address, write in zip(chunk.tolist(), flags.tolist()):
                    yield Access(address, write)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if self.description != other.description or len(self) != len(other):
            return False
        mine, mine_w = self.as_arrays()
        theirs, theirs_w = other.as_arrays()
        if not np.array_equal(mine, theirs):
            return False
        if mine_w is None and theirs_w is None:
            return True
        if mine_w is None:
            return not theirs_w.any()
        if theirs_w is None:
            return not mine_w.any()
        return np.array_equal(mine_w, theirs_w)

    def __repr__(self) -> str:
        return f"Trace({self._length} accesses, {self.description!r})"

    # -- internals --------------------------------------------------------

    def _invalidate(self) -> None:
        self._arrays_cache = None
        self._view_cache = None

    def _flush_pending(self) -> None:
        """Move buffered scalar appends into the small-block staging area."""
        if not self._pend_addr:
            return
        block = np.array(self._pend_addr, dtype=np.int64)
        flags = (np.array(self._pend_write, dtype=bool)
                 if self._pend_has_write else None)
        self._pend_addr = []
        self._pend_write = []
        self._pend_has_write = False
        self._push_block(block, flags)

    def _push_block(self, block: np.ndarray,
                    flags: np.ndarray | None) -> None:
        """Stage one validated block, sealing when enough has accumulated.

        Large blocks with an empty staging area seal directly (zero-copy);
        small blocks coalesce so downstream chunks stay batch-sized.
        """
        if not self._small and block.size >= _CHUNK_TARGET:
            self._chunks.append(block)
            self._bitmaps.append(None if flags is None else np.packbits(flags))
            return
        self._small.append((block, flags))
        self._small_size += block.size
        if self._small_size >= _CHUNK_TARGET:
            self._seal_small()

    def _seal_small(self) -> None:
        if not self._small:
            return
        if len(self._small) == 1:
            chunk, flags = self._small[0]
        else:
            chunk = np.concatenate([block for block, _ in self._small])
            if all(flags is None for _, flags in self._small):
                flags = None
            else:
                flags = np.zeros(chunk.size, dtype=bool)
                offset = 0
                for block, block_flags in self._small:
                    if block_flags is not None:
                        flags[offset:offset + block.size] = block_flags
                    offset += block.size
        self._chunks.append(chunk)
        self._bitmaps.append(None if flags is None else np.packbits(flags))
        self._small = []
        self._small_size = 0

    def _seal(self) -> None:
        """Finalise all staged references into sealed chunks."""
        self._flush_pending()
        self._seal_small()

    def _merge_description(self, other: str) -> None:
        if not other or other == self.description:
            return
        if not self.description:
            self.description = other
        elif other in self.description:
            return
        elif len(self.description) >= _DESCRIPTION_CAP:
            if not self.description.endswith(" + ..."):
                self.description += " + ..."
        else:
            self.description = f"{self.description} + {other}"

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        """Write the trace to a text file.

        Format: a ``#``-prefixed description line, then one access per
        line as ``R <address>`` or ``W <address>`` — trivially diffable
        and greppable, which matters more for traces than compactness.
        """
        addresses, writes = self.as_arrays()
        with open(path, "w") as handle:
            handle.write(f"# {self.description}\n")
            if writes is None:
                handle.writelines(
                    f"R {address}\n" for address in addresses.tolist())
            else:
                handle.writelines(
                    f"{'W' if write else 'R'} {address}\n"
                    for address, write in zip(addresses.tolist(),
                                              writes.tolist()))

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`.

        Raises:
            ValueError: on a malformed line.
        """
        trace = cls()
        addresses: list[int] = []
        writes: list[bool] = []
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if line_number == 1:
                        trace.description = line[1:].strip()
                    continue
                parts = line.split()
                if len(parts) != 2 or parts[0] not in ("R", "W"):
                    raise ValueError(
                        f"{path}:{line_number}: malformed trace line {line!r}"
                    )
                addresses.append(int(parts[1]))
                writes.append(parts[0] == "W")
        trace.append_block(np.array(addresses, dtype=np.int64),
                           write=np.array(writes, dtype=bool))
        return trace
