"""Address traces: the lingua franca between workloads and caches.

A :class:`Trace` is an ordered sequence of word-granular memory references
with optional read/write flags, tagged with a human-readable description of
the access pattern that produced it.  Pattern generators
(:mod:`repro.trace`) and real kernels (:mod:`repro.workloads`) both emit
traces; :mod:`repro.trace.replay` feeds them to cache models and the
machine simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Access", "Trace"]


@dataclass(frozen=True)
class Access:
    """One memory reference.

    Attributes:
        address: word-granular address.
        write: ``True`` for a store.
    """

    address: int
    write: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("addresses must be non-negative")


@dataclass
class Trace:
    """An ordered reference stream with provenance.

    Attributes:
        accesses: the reference list.
        description: what produced this trace (shown in reports).
    """

    accesses: list[Access] = field(default_factory=list)
    description: str = ""

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[int], *, write: bool = False, description: str = ""
    ) -> "Trace":
        """Build a read-only (or write-only) trace from raw addresses."""
        return cls(
            [Access(int(a), write) for a in addresses], description=description
        )

    def append(self, address: int, *, write: bool = False) -> None:
        """Record one reference."""
        self.accesses.append(Access(int(address), write))

    def extend(self, other: "Trace") -> "Trace":
        """Concatenate another trace onto this one (returns self)."""
        self.accesses.extend(other.accesses)
        return self

    def addresses(self) -> list[int]:
        """Just the address stream."""
        return [access.address for access in self.accesses]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The trace as numpy arrays for the batched replay path.

        Returns ``(addresses, writes)`` — an ``int64`` address array plus
        a bool write-flag array, or ``None`` in place of the flags for an
        all-read trace (the common case, which lets replays skip per-access
        write handling entirely).
        """
        count = len(self.accesses)
        addresses = np.fromiter(
            (access.address for access in self.accesses),
            dtype=np.int64,
            count=count,
        )
        if any(access.write for access in self.accesses):
            writes = np.fromiter(
                (access.write for access in self.accesses),
                dtype=np.bool_,
                count=count,
            )
        else:
            writes = None
        return addresses, writes

    def reads(self) -> "Trace":
        """The read-only sub-trace."""
        return Trace(
            [a for a in self.accesses if not a.write],
            description=f"{self.description} (reads)",
        )

    def writes(self) -> "Trace":
        """The write-only sub-trace."""
        return Trace(
            [a for a in self.accesses if a.write],
            description=f"{self.description} (writes)",
        )

    def unique_addresses(self) -> set[int]:
        """Distinct addresses touched (the trace's working set)."""
        return {access.address for access in self.accesses}

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accesses)

    def __repr__(self) -> str:
        return f"Trace({len(self.accesses)} accesses, {self.description!r})"

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        """Write the trace to a text file.

        Format: a ``#``-prefixed description line, then one access per
        line as ``R <address>`` or ``W <address>`` — trivially diffable
        and greppable, which matters more for traces than compactness.
        """
        with open(path, "w") as handle:
            handle.write(f"# {self.description}\n")
            for access in self.accesses:
                kind = "W" if access.write else "R"
                handle.write(f"{kind} {access.address}\n")

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`.

        Raises:
            ValueError: on a malformed line.
        """
        trace = cls()
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if line_number == 1:
                        trace.description = line[1:].strip()
                    continue
                parts = line.split()
                if len(parts) != 2 or parts[0] not in ("R", "W"):
                    raise ValueError(
                        f"{path}:{line_number}: malformed trace line {line!r}"
                    )
                trace.append(int(parts[1]), write=parts[0] == "W")
        return trace
