"""Replay traces through cache models and compare organisations.

This is the trace-driven-simulation leg of the reproduction (the paper
cites So & Zecca's trace-driven study as prior art; our analytical results
are cross-checked the same way): feed the same reference stream to several
cache organisations and compare hit ratios and conflict-miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import Cache
from repro.cache.stats import CacheStats
from repro.trace.records import Trace

__all__ = ["ReplayResult", "replay", "compare_caches"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one trace through one cache.

    Attributes:
        label: the cache's description.
        stats: the cache's statistics after the replay.
        stall_cycles: miss stalls under the paper's costing — every miss
            beyond the initial loading costs the full memory time.  The
            caller provides ``t_m``; compulsory misses are exempt
            (pipelined initial loading).
    """

    label: str
    stats: CacheStats
    stall_cycles: float

    @property
    def hit_ratio(self) -> float:
        """Hits per access over the replay."""
        return self.stats.hit_ratio


def replay(trace: Trace, cache: Cache, *, t_m: int = 16) -> ReplayResult:
    """Run every access of ``trace`` through ``cache``.

    The cache is reset first so results are a function of the trace alone.
    Stall cycles charge ``t_m`` for every non-compulsory miss (conflict or
    capacity), reflecting the paper's premise that only the initial loading
    pipelines.
    """
    cache.reset()
    for access in trace:
        cache.access(access.address, write=access.write)
    stats = cache.stats
    non_compulsory = stats.misses - stats.compulsory_misses
    label = cache.describe() if hasattr(cache, "describe") else type(cache).__name__
    return ReplayResult(label, stats, float(non_compulsory * t_m))


def compare_caches(trace: Trace, caches: list[Cache], *, t_m: int = 16):
    """Replay one trace through several caches; returns a list of
    :class:`ReplayResult` in the given cache order."""
    return [replay(trace, cache, t_m=t_m) for cache in caches]
