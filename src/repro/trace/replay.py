"""Replay traces through cache models and compare organisations.

This is the trace-driven-simulation leg of the reproduction (the paper
cites So & Zecca's trace-driven study as prior art; our analytical results
are cross-checked the same way): feed the same reference stream to several
cache organisations and compare hit ratios and conflict-miss counts.

Replay runs on the batched :meth:`~repro.cache.base.Cache.access_many`
fast path whenever the cache provides it; wrapper organisations with
per-access side effects (victim buffer, prefetcher) fall back to the
scalar loop, which is semantically identical.

Stall costing (the paper's premise): a hit is free; a *compulsory* miss
is part of the initial vector loading, which pipelines through the
interleaved banks, so it is exempt; every other miss stalls the machine
for the full memory time ``t_m``.  When the cache was built with
``classify_misses=False`` there is no three-C split to read the
compulsory count from, so :func:`replay` falls back to counting distinct
lines touched by the trace — exact for plain caches, because the cache is
reset first and each distinct line's first reference necessarily misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.base import Cache
from repro.cache.stats import CacheStats
from repro.trace.records import Trace

__all__ = ["ReplayResult", "replay", "compare_caches"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one trace through one cache.

    Attributes:
        label: the cache's description.
        stats: the cache's statistics after the replay.
        stall_cycles: miss stalls under the paper's costing — every miss
            beyond the initial loading costs the full memory time.  The
            caller provides ``t_m``; compulsory misses are exempt
            (pipelined initial loading).
    """

    label: str
    stats: CacheStats
    stall_cycles: float

    @property
    def hit_ratio(self) -> float:
        """Hits per access over the replay."""
        return self.stats.hit_ratio


def _compulsory_estimate(trace: Trace, cache) -> int:
    """Compulsory-miss count for a cache without a classifier.

    The replayed cache starts empty, so the first reference to every
    distinct line misses — those are exactly the compulsory misses of a
    plain cache.  (For a prefetching wrapper a first touch can hit on a
    prefetched line; the estimate then overcounts, and the caller clamps.)

    A trace that knows its own footprint in closed form (synthetic
    streams expose ``distinct_lines``) answers without materialising the
    address arrays, keeping billion-reference replays at O(chunk) memory.
    """
    line_shift = cache.line_size_words.bit_length() - 1
    distinct_lines = getattr(trace, "distinct_lines", None)
    if distinct_lines is not None:
        return int(distinct_lines(line_shift))
    addresses, _ = trace.as_arrays()
    return int(np.unique(addresses >> line_shift).size)


def replay(
    trace: Trace, cache: Cache, *, t_m: int = 16, backend: str | None = None
) -> ReplayResult:
    """Run every access of ``trace`` through ``cache``.

    The cache is reset first so results are a function of the trace alone.
    Stall cycles charge ``t_m`` for every non-compulsory miss (conflict or
    capacity), reflecting the paper's premise that only the initial loading
    pipelines.  Without a classifier the compulsory count is recovered
    from the distinct lines the trace touches (see the module docstring).

    ``backend`` selects the :meth:`~repro.cache.base.Cache.access_many`
    replay engine (``"scalar"``/``"numpy"``/``"compiled"``; ``None`` takes
    :func:`repro.kernels.default_backend`).  The three are bit-for-bit
    equivalent; peak memory stays O(chunk) on every one of them because
    the trace is consumed block by block.
    """
    cache.reset()
    access_many = getattr(cache, "access_many", None)
    if access_many is not None:
        # stream the trace's sealed chunks zero-copy; no Access objects
        # and no whole-trace concatenation are ever materialised
        for addresses, writes in trace.iter_blocks():
            access_many(addresses, writes, backend=backend)
    else:
        # wrapper caches (victim buffer, prefetcher) keep their
        # per-access side effects on the scalar path
        for access in trace:
            cache.access(access.address, write=access.write)
    stats = cache.stats
    if getattr(cache, "classifies_misses", True):
        compulsory = stats.compulsory_misses
    else:
        compulsory = _compulsory_estimate(trace, cache)
    non_compulsory = max(0, stats.misses - compulsory)
    label = cache.describe() if hasattr(cache, "describe") else type(cache).__name__
    return ReplayResult(label, stats, float(non_compulsory * t_m))


def compare_caches(
    trace: Trace,
    caches: list[Cache],
    *,
    t_m: int = 16,
    backend: str | None = None,
):
    """Replay one trace through several caches; returns a list of
    :class:`ReplayResult` in the given cache order."""
    return [replay(trace, cache, t_m=t_m, backend=backend) for cache in caches]
