"""Synthetic reference streams with O(chunk) memory — no materialisation.

A billion-reference replay through :class:`~repro.trace.records.Trace`
would need 8 GB just for the address column.  The streams here exploit
what makes synthetic traces synthetic: a strided sweep folded over a
fixed window is **periodic**, so the whole stream is one small template
tiled end to end.  :class:`StridedStream` precomputes a single period of
addresses plus one chunk-sized tiling of it, then serves every
``iter_blocks`` chunk as a zero-copy *view* into that buffer — peak
memory is O(chunk + period) no matter how many references the stream
claims, which is what lets ``benchmarks/bench_stream.py`` push 10^9
references through the compiled replay kernels inside a bounded RSS.

The class duck-types the slice of the :class:`~repro.trace.records.Trace`
API the streaming consumers use (``iter_blocks``, ``__len__``,
``description``, per-:class:`~repro.trace.records.Access` iteration) and
adds the ``distinct_lines`` hook that
:func:`repro.trace.replay._compulsory_estimate` consults so the
compulsory-miss count is recovered from the period alone — the whole
replay never touches an O(length) allocation on any backend.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.trace.records import Access

__all__ = ["StridedStream"]

#: ``as_arrays`` compatibility cap: above this the caller almost
#: certainly wanted the streaming API, and materialising would defeat
#: the bounded-memory contract, so it refuses instead.
_MATERIALISE_CAP = 1 << 26


class StridedStream:
    """A stride-``s`` sweep folded over a window, served without storage.

    Reference ``i`` has address ``base + (i * stride) mod window`` — the
    same shape as the strided patterns of :mod:`repro.trace.patterns`,
    but generated lazily from one precomputed period of
    ``window / gcd(stride, window)`` addresses instead of being recorded.

    Args:
        length: total references in the stream (any size; memory does
            not depend on it).
        stride: word stride of the sweep (positive).
        window: fold window in words (positive); together with ``stride``
            it fixes the period and the working set.
        base: word address the window starts at.
        chunk: references per ``iter_blocks`` chunk (the unit of replay
            batching and the memory high-water mark).

    Example:
        >>> stream = StridedStream(10, stride=3, window=8)
        >>> [access.address for access in stream]
        [0, 3, 6, 1, 4, 7, 2, 5, 0, 3]
        >>> stream.distinct_lines()
        8
    """

    def __init__(
        self,
        length: int,
        *,
        stride: int = 1,
        window: int = 1 << 20,
        base: int = 0,
        chunk: int = 1 << 20,
        description: str | None = None,
    ) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        if stride <= 0 or window <= 0 or chunk <= 0:
            raise ValueError("stride, window and chunk must be positive")
        if base < 0:
            raise ValueError("base must be non-negative")
        self._length = int(length)
        self.stride = int(stride)
        self.window = int(window)
        self.base = int(base)
        self.chunk = int(chunk)
        self.period = self.window // math.gcd(self.stride, self.window)
        self.description = description if description is not None else (
            f"strided stream: {length} refs, stride {stride}, "
            f"window {window}"
        )
        # one period of the sweep in issue order...
        template = (
            self.base
            + (np.arange(self.period, dtype=np.int64) * self.stride)
            % self.window
        )
        self._template = template
        # ...tiled just far enough that any chunk-sized run starting at
        # any phase of the period is a contiguous slice of the buffer
        reps = -(-(self.chunk + self.period - 1) // self.period)
        self._tiled = template if reps == 1 else np.tile(template, reps)

    # -- Trace-compatible surface ----------------------------------------

    def __len__(self) -> int:
        return self._length

    def iter_blocks(self) -> Iterator[tuple[np.ndarray, None]]:
        """Yield ``(addresses, writes)`` chunks, each a zero-copy view.

        Chunks are ``self.chunk`` references (the final one shorter);
        ``writes`` is always ``None`` — the stream models a load sweep.
        Consumers must treat the address views as read-only.
        """
        produced = 0
        while produced < self._length:
            take = min(self.chunk, self._length - produced)
            start = produced % self.period
            yield self._tiled[start:start + take], None
            produced += take

    def __iter__(self) -> Iterator[Access]:
        for addresses, _ in self.iter_blocks():
            for address in addresses.tolist():
                yield Access(address)

    def as_arrays(self) -> tuple[np.ndarray, None]:
        """Materialise the stream (compatibility; refuses huge lengths).

        The streaming consumers never call this — it exists so short
        streams interoperate with whole-trace tooling.  Lengths beyond
        ``2**26`` raise instead of silently allocating gigabytes.
        """
        if self._length > _MATERIALISE_CAP:
            raise ValueError(
                f"refusing to materialise {self._length} references; "
                "use iter_blocks() to stream"
            )
        if self._length == 0:
            return np.empty(0, dtype=np.int64), None
        parts = [chunk for chunk, _ in self.iter_blocks()]
        return (parts[0].copy() if len(parts) == 1
                else np.concatenate(parts)), None

    # -- closed-form footprint -------------------------------------------

    def distinct_lines(self, line_shift: int = 0) -> int:
        """Distinct cache lines the stream touches, from the period alone.

        Once the stream runs a full period it has visited every address
        it ever will (the sweep repeats exactly), so the footprint is a
        unique-count over at most ``period`` addresses — O(period) work
        for any ``length``.  :func:`repro.trace.replay.replay` uses this
        for the compulsory-miss estimate of classifier-free caches.
        """
        visited = self._template[: min(self._length, self.period)]
        if visited.size == 0:
            return 0
        return int(
            np.unique(visited >> line_shift if line_shift else visited).size
        )

    def __repr__(self) -> str:
        return (
            f"StridedStream({self._length} refs, stride={self.stride}, "
            f"window={self.window}, period={self.period})"
        )
