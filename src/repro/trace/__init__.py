"""Vector access-pattern trace generators and trace replay utilities."""

from repro.trace.patterns import (
    fft_butterflies,
    fft_stage_strides,
    matrix_column,
    matrix_diagonal,
    matrix_row,
    multistride,
    row_column_mix,
    strided,
    subblock,
)
from repro.trace.records import Access, Trace
from repro.trace.replay import ReplayResult, compare_caches, replay
from repro.trace.stream import StridedStream

__all__ = [
    "Access",
    "ReplayResult",
    "StridedStream",
    "Trace",
    "compare_caches",
    "fft_butterflies",
    "fft_stage_strides",
    "matrix_column",
    "matrix_diagonal",
    "matrix_row",
    "multistride",
    "replay",
    "row_column_mix",
    "strided",
    "subblock",
]
