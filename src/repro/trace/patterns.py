"""The paper's three vector access-pattern families, as trace generators.

Section 4 evaluates the prime-mapped cache on *random multistride*,
*sub-block* and *FFT* accesses; the discussion around Figure 11a adds
row/column (and, in the introduction, diagonal) walks of a column-major
matrix.  Each generator here produces the exact reference stream such a
pattern issues, so the cache models can measure what the analytical model
predicts.

All addresses are word-granular; matrices are column-major with leading
dimension ``P`` (element ``(i, j)`` lives at ``base + i + j * P``), as in
the paper.

Every generator has two construction paths producing bit-for-bit identical
traces: the default **columnar** path builds the address stream with
closed-form ``np.arange`` arithmetic and records it in whole blocks, while
``columnar=False`` keeps the original per-reference scalar loop as the
differential reference (the ``trace-columnar`` oracle compares the two).
"""

from __future__ import annotations

import random

import numpy as np

from repro.trace.records import Trace

__all__ = [
    "strided",
    "multistride",
    "matrix_column",
    "matrix_row",
    "matrix_diagonal",
    "row_column_mix",
    "subblock",
    "fft_stage_strides",
    "fft_butterflies",
]


def _strided_block(base: int, stride: int, length: int,
                   sweeps: int) -> np.ndarray:
    """``sweeps`` repeats of the closed-form constant-stride walk."""
    one = base + np.arange(length, dtype=np.int64) * stride
    return one if sweeps == 1 else np.tile(one, sweeps)


def strided(base: int, stride: int, length: int, *, sweeps: int = 1,
            columnar: bool = True) -> Trace:
    """``sweeps`` traversals of a constant-stride vector.

    The second and later sweeps are what separate the cache designs: a
    conflict-free mapping turns them into pure hits.
    """
    if length <= 0 or sweeps <= 0:
        raise ValueError("length and sweeps must be positive")
    description = f"stride {stride} x{length}, {sweeps} sweeps"
    if not columnar:
        addresses = [base + i * stride for i in range(length)] * sweeps
        return Trace.from_addresses(addresses, description=description)
    trace = Trace(description=description)
    trace.append_block(_strided_block(base, stride, length, sweeps))
    return trace


def multistride(
    length: int,
    num_vectors: int,
    stride_modulus: int,
    *,
    p_stride1: float = 0.25,
    sweeps: int = 2,
    seed: int = 0,
    address_space: int = 1 << 28,
    columnar: bool = True,
) -> Trace:
    """The random-multistride pattern of Figures 7–9.

    Draws ``num_vectors`` vectors with independent bases and strides from
    the paper's distribution (unit with probability ``p_stride1``, else
    uniform on ``2 .. stride_modulus``) and sweeps each ``sweeps`` times.
    """
    if not 0.0 <= p_stride1 <= 1.0:
        raise ValueError("p_stride1 must be a probability")
    rng = random.Random(seed)
    trace = Trace(description=f"multistride x{num_vectors}, P1={p_stride1}")
    for _ in range(num_vectors):
        base = rng.randrange(address_space)
        if rng.random() < p_stride1:
            stride = 1
        else:
            stride = rng.randint(2, stride_modulus)
        if columnar:
            trace.append_block(_strided_block(base, stride, length, sweeps))
        else:
            for _ in range(sweeps):
                for i in range(length):
                    trace.append(base + i * stride)
    return trace


def matrix_column(p: int, rows: int, column: int, *, base: int = 0,
                  columnar: bool = True) -> Trace:
    """One column of a column-major ``P``-leading-dimension matrix: stride 1."""
    if rows <= 0:
        raise ValueError("rows must be positive")
    start = base + column * p
    description = f"column {column} of ldP={p}"
    if not columnar:
        return Trace.from_addresses(
            range(start, start + rows), description=description)
    trace = Trace(description=description)
    trace.append_block(np.arange(start, start + rows, dtype=np.int64))
    return trace


def matrix_row(p: int, columns: int, row: int, *, base: int = 0,
               columnar: bool = True) -> Trace:
    """One row of the same matrix: stride ``P``."""
    if columns <= 0:
        raise ValueError("columns must be positive")
    description = f"row {row} of ldP={p}"
    if not columnar:
        return Trace.from_addresses(
            (base + row + j * p for j in range(columns)),
            description=description)
    trace = Trace(description=description)
    trace.append_block(_strided_block(base + row, p, columns, 1))
    return trace


def matrix_diagonal(p: int, length: int, *, base: int = 0,
                    columnar: bool = True) -> Trace:
    """The major diagonal: stride ``P + 1`` — the introduction's example of
    a stride that can never be co-prime with a power-of-two cache at the
    same time as the row stride ``P``."""
    if length <= 0:
        raise ValueError("length must be positive")
    description = f"diagonal of ldP={p}"
    if not columnar:
        return Trace.from_addresses(
            (base + i * (p + 1) for i in range(length)),
            description=description)
    trace = Trace(description=description)
    trace.append_block(_strided_block(base, p + 1, length, 1))
    return trace


def row_column_mix(
    p: int,
    length: int,
    *,
    row_fraction: float = 0.5,
    accesses: int = 16,
    sweeps: int = 2,
    seed: int = 0,
    base: int = 0,
    columnar: bool = True,
) -> Trace:
    """Figure 11a's pattern: a mix of row (stride ``P``) and column
    (stride 1) walks of a matrix, each walked ``sweeps`` times."""
    if not 0.0 <= row_fraction <= 1.0:
        raise ValueError("row_fraction must be a probability")
    rng = random.Random(seed)
    trace = Trace(description=f"row/column mix, rows={row_fraction:.0%}")
    for _ in range(accesses):
        if rng.random() < row_fraction:
            index = rng.randrange(max(1, p))
            start, stride = base + index, p
        else:
            index = rng.randrange(max(1, length))
            start, stride = base + index * p, 1
        if columnar:
            trace.append_block(_strided_block(start, stride, length, sweeps))
        else:
            for _ in range(sweeps):
                for i in range(length):
                    trace.append(start + i * stride)
    return trace


def subblock(
    p: int, b1: int, b2: int, *, base: int = 0, sweeps: int = 1,
    columnar: bool = True
) -> Trace:
    """A ``b1 x b2`` sub-block of a column-major matrix: ``b2`` unit-stride
    column pieces whose starts are ``P`` apart (Section 4)."""
    if b1 <= 0 or b2 <= 0 or sweeps <= 0:
        raise ValueError("block dimensions and sweeps must be positive")
    description = f"subblock {b1}x{b2} of ldP={p}"
    if not columnar:
        addresses = [
            base + row + column * p
            for column in range(b2) for row in range(b1)
        ] * sweeps
        return Trace.from_addresses(addresses, description=description)
    block = (base
             + np.arange(b2, dtype=np.int64)[:, None] * p
             + np.arange(b1, dtype=np.int64)[None, :]).ravel()
    trace = Trace(description=description)
    trace.append_block(block if sweeps == 1 else np.tile(block, sweeps))
    return trace


def fft_stage_strides(n: int) -> list[int]:
    """Butterfly span per stage of an in-place radix-2 DIT FFT of size ``n``:
    ``1, 2, 4, ..., n/2`` — all powers of two, the direct-mapped cache's
    worst case."""
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    return [1 << s for s in range(n.bit_length() - 1)]


def fft_butterflies(n: int, *, base: int = 0,
                    columnar: bool = True) -> Trace:
    """The full reference stream of an in-place radix-2 DIT FFT.

    For each stage with span ``h``, butterflies pair elements ``k`` and
    ``k + h`` within each size-``2h`` group; each butterfly reads and
    writes both elements.
    """
    trace = Trace(description=f"radix-2 FFT, n={n}")
    for half in fft_stage_strides(n):
        size = half * 2
        if columnar:
            index = np.arange(n // 2, dtype=np.int64)
            top = base + (index // half) * size + index % half
            bottom = top + half
            block = np.empty(4 * top.size, dtype=np.int64)
            block[0::4] = top
            block[1::4] = bottom
            block[2::4] = top
            block[3::4] = bottom
            flags = np.zeros(block.size, dtype=bool)
            flags[2::4] = True
            flags[3::4] = True
            trace.append_block(block, write=flags)
        else:
            for group in range(0, n, size):
                for k in range(group, group + half):
                    top, bottom = base + k, base + k + half
                    trace.append(top)
                    trace.append(bottom)
                    trace.append(top, write=True)
                    trace.append(bottom, write=True)
    return trace
