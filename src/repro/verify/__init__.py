"""Differential verification: oracles, golden baselines, mutation
self-checks.

The three layers (see ``docs/verification.md``):

* :mod:`repro.verify.oracles` + :mod:`repro.verify.runner` — every
  fast/derived implementation swept against its reference over seeded
  case grids, reporting structured mismatches.
* :mod:`repro.verify.golden` — figure/simulation results pinned as
  committed JSON under ``results/golden/`` with per-metric tolerances.
* :mod:`repro.verify.mutations` — known faults injected to prove each
  is caught by at least one oracle.

:func:`run_verification` composes all three into one
:class:`~repro.verify.result.VerifyReport`; the CLI's ``repro verify``
is a thin wrapper around it.
"""

from __future__ import annotations

from pathlib import Path

from repro.verify.golden import bless, compare
from repro.verify.mutations import MUTATIONS, Mutation, run_selfcheck
from repro.verify.oracles import ORACLES, Oracle, default_oracles
from repro.verify.result import (
    GoldenDiff,
    Mismatch,
    MutationOutcome,
    OracleOutcome,
    VerifyReport,
)
from repro.verify.runner import DifferentialRunner

__all__ = [
    "MUTATIONS",
    "ORACLES",
    "DifferentialRunner",
    "GoldenDiff",
    "Mismatch",
    "Mutation",
    "MutationOutcome",
    "Oracle",
    "OracleOutcome",
    "VerifyReport",
    "bless",
    "compare",
    "default_oracles",
    "run_selfcheck",
    "run_verification",
]


def run_verification(
    mode: str = "quick", *, seed: int = 0,
    golden_dir: Path | None = None,
    golden: bool = True, selfcheck: bool = True,
) -> VerifyReport:
    """One full verification pass: oracle sweep, golden diff, self-check."""
    report = VerifyReport(mode=mode, seed=seed)
    report.oracles = DifferentialRunner(seed=seed).run(mode)
    if golden:
        report.golden = compare(golden_dir)
    if selfcheck:
        report.selfcheck = run_selfcheck(seed=seed, mode=mode)
    return report
