"""Structured results of the differential-verification subsystem.

Every layer of ``repro.verify`` — the oracle sweeps, the golden-baseline
diff, and the mutation self-check — reports through the dataclasses here,
so one :class:`VerifyReport` can be rendered for a terminal, serialised
to JSON for a CI artifact, and asserted on by the test suite without
re-parsing any text.

The unit of failure is a :class:`Mismatch`: *where* two implementations
disagreed (oracle, seed, full case configuration) and *what* the first
diverging value was — enough to re-run the exact case from the report
alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Mismatch:
    """One divergence between a fast/derived implementation and its oracle.

    Attributes:
        oracle: registry name of the oracle that caught it.
        seed: the case's reproduction seed.
        config: the full case configuration (JSON-safe scalars only), so
            ``Oracle.check_case(config)`` replays the exact failure.
        metric: the first diverging quantity, e.g. ``"hits[17]"`` or
            ``"report.bank_stall_cycles"``.
        expected: the reference implementation's value.
        actual: the implementation under test's value.
        detail: optional free-form context (which file/function pair).
    """

    oracle: str
    seed: int
    config: dict
    metric: str
    expected: object
    actual: object
    detail: str = ""

    def describe(self) -> str:
        """One actionable line: oracle, seed, config, first divergence."""
        extra = f"  [{self.detail}]" if self.detail else ""
        return (
            f"{self.oracle}: {self.metric} expected {self.expected!r} "
            f"got {self.actual!r} (seed={self.seed}, "
            f"config={self.config!r}){extra}"
        )


@dataclass
class OracleOutcome:
    """All cases of one oracle over one sweep.

    Attributes:
        oracle: registry name.
        description: what pair of implementations the oracle cross-checks.
        cases: number of case configurations swept.
        mismatches: every divergence found (empty means the pair agrees).
    """

    oracle: str
    description: str
    cases: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass(frozen=True)
class GoldenDiff:
    """One golden-baseline metric out of tolerance (or missing).

    Attributes:
        metric_set: baseline file stem under ``results/golden/``.
        metric: the metric key inside the file.
        expected: the blessed value (``None`` for a metric the baseline
            does not know — a new metric that needs re-blessing).
        actual: the freshly computed value (``None`` when the code no
            longer produces a blessed metric).
        tolerance: the relative tolerance the comparison applied.
    """

    metric_set: str
    metric: str
    expected: float | None
    actual: float | None
    tolerance: float

    def describe(self) -> str:
        if self.expected is None:
            return (f"{self.metric_set}/{self.metric}: not in the blessed "
                    f"baseline (fresh value {self.actual!r}); re-bless with "
                    f"`repro verify --bless`")
        if self.actual is None:
            return (f"{self.metric_set}/{self.metric}: blessed value "
                    f"{self.expected!r} is no longer produced")
        return (f"{self.metric_set}/{self.metric}: expected "
                f"{self.expected!r} got {self.actual!r} "
                f"(rel tol {self.tolerance:g})")


@dataclass
class MutationOutcome:
    """One injected fault and which oracles caught it.

    Attributes:
        mutation: catalogue name of the injected fault.
        description: what the fault breaks.
        expected_oracles: oracles designed to catch this fault.
        caught_by: oracles that actually reported a mismatch while the
            fault was active.  Empty means the verification net has a
            hole.
    """

    mutation: str
    description: str
    expected_oracles: tuple[str, ...]
    caught_by: list[str] = field(default_factory=list)

    @property
    def caught(self) -> bool:
        return bool(self.caught_by)


@dataclass
class VerifyReport:
    """Aggregate outcome of one ``repro verify`` run."""

    mode: str
    seed: int
    oracles: list[OracleOutcome] = field(default_factory=list)
    golden: list[GoldenDiff] | None = None
    selfcheck: list[MutationOutcome] | None = None

    @property
    def mismatches(self) -> list[Mismatch]:
        """All oracle mismatches, flattened."""
        return [m for outcome in self.oracles for m in outcome.mismatches]

    @property
    def holes(self) -> list[MutationOutcome]:
        """Self-check mutations no oracle caught."""
        return [m for m in self.selfcheck or [] if not m.caught]

    @property
    def ok(self) -> bool:
        """Clean run: no mismatch, no golden drift, no self-check hole."""
        return (not self.mismatches and not self.golden
                and not self.holes)

    def to_dict(self) -> dict:
        """JSON-safe representation (the CI artifact)."""
        return {
            "mode": self.mode,
            "seed": self.seed,
            "ok": self.ok,
            "oracles": [
                {
                    "oracle": o.oracle,
                    "description": o.description,
                    "cases": o.cases,
                    "mismatches": [
                        {
                            "oracle": m.oracle,
                            "seed": m.seed,
                            "config": m.config,
                            "metric": m.metric,
                            "expected": repr(m.expected),
                            "actual": repr(m.actual),
                            "detail": m.detail,
                        }
                        for m in o.mismatches
                    ],
                }
                for o in self.oracles
            ],
            "golden": None if self.golden is None else [
                {
                    "metric_set": d.metric_set,
                    "metric": d.metric,
                    "expected": d.expected,
                    "actual": d.actual,
                    "tolerance": d.tolerance,
                }
                for d in self.golden
            ],
            "selfcheck": None if self.selfcheck is None else [
                {
                    "mutation": m.mutation,
                    "description": m.description,
                    "expected_oracles": list(m.expected_oracles),
                    "caught_by": m.caught_by,
                    "caught": m.caught,
                }
                for m in self.selfcheck
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable summary, one section per layer."""
        lines = [f"differential verification ({self.mode}, seed {self.seed})"]
        for outcome in self.oracles:
            verdict = "ok" if outcome.ok else f"{len(outcome.mismatches)} MISMATCH"
            lines.append(f"  oracle {outcome.oracle:28s} "
                         f"{outcome.cases:4d} cases  {verdict}")
            for mismatch in outcome.mismatches:
                lines.append(f"    {mismatch.describe()}")
        if self.golden is not None:
            verdict = "ok" if not self.golden else f"{len(self.golden)} DRIFT"
            lines.append(f"  golden baselines: {verdict}")
            for diff in self.golden:
                lines.append(f"    {diff.describe()}")
        if self.selfcheck is not None:
            holes = self.holes
            verdict = "no holes" if not holes else f"{len(holes)} HOLE"
            lines.append(f"  mutation self-check: {verdict}")
            for outcome in self.selfcheck:
                status = (f"caught by {', '.join(outcome.caught_by)}"
                          if outcome.caught else "NOT CAUGHT")
                lines.append(f"    {outcome.mutation:32s} {status}")
        lines.append("verdict: " + ("CLEAN" if self.ok else "FAILED"))
        return "\n".join(lines)
