"""Golden-baseline regression: figure and simulation results pinned as
committed JSON under ``results/golden/``.

Four metric sets cover the layers that produce numbers:

* ``figures`` — every point of every analytical figure (Eqs. 1–8 swept
  over the paper's grids).  Pure closed forms: pinned at ``1e-9``
  relative tolerance, so any change to the equations, the calibrated
  defaults, or the congruence machinery shows up as drift.
* ``replay`` — cache statistics (hits, misses, three-C kinds) of fixed
  seeded traces replayed through each cache organisation.  Integers:
  pinned exactly.
* ``machine`` — cycle counts and stall breakdowns of seeded VCM runs on
  the MM/CC machines, plus a small ``figure7_simulated`` grid point.
  Deterministic given the seed: pinned exactly for integer metrics, at
  ``1e-9`` for seed-averaged means.
* ``zoo`` — the cache-organisation zoo (docs/cache-zoo.md): replay
  statistics of the bicameral, hashed-index, and two-level caches on a
  fixed seeded trace, per-level hit counters, and the hashed-index
  collision law at pinned seeds.  Integers: pinned exactly.

Workflow: ``repro verify --bless`` recomputes and rewrites the files;
a tier-1 test and ``repro verify`` diff fresh runs against them.  A
*deliberate* behaviour change therefore ships with the re-blessed JSON
in the same commit, making the numeric consequences reviewable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.verify.result import GoldenDiff

__all__ = [
    "GOLDEN_DIR",
    "METRIC_SETS",
    "MetricSet",
    "bless",
    "compare",
    "compute_metrics",
]

#: Committed baselines live at the repo root, three levels above this file
#: (src/repro/verify/golden.py -> repo).
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "results" / "golden"


@dataclass(frozen=True)
class MetricSet:
    """One golden baseline file: a name, a tolerance, and a recompute."""

    name: str
    tolerance: float
    compute: Callable[[], dict[str, float]]
    description: str = ""


def _figures_metrics() -> dict[str, float]:
    # answered from the orchestrated result cache (one lookup per figure
    # once a sweep has run); compute_figures bypasses the cache entirely
    # while a mutation self-check fault is injected
    from repro.orchestrate import compute_figures

    metrics: dict[str, float] = {}
    for figure_id, result in compute_figures().items():
        for series in result.series:
            for x, value in zip(result.x_values, series.values):
                metrics[f"{figure_id}/{series.label}/x={x}"] = float(value)
    return metrics


def _replay_metrics() -> dict[str, float]:
    import random

    from repro.cache import (
        DirectMappedCache,
        FullyAssociativeCache,
        MissKind,
        PrimeMappedCache,
        SetAssociativeCache,
    )

    caches = {
        "direct": DirectMappedCache(num_lines=128),
        "prime": PrimeMappedCache(c=7),
        "set2": SetAssociativeCache(num_sets=64, num_ways=2),
        "full": FullyAssociativeCache(num_lines=128),
    }
    rng = random.Random(20260806)
    # one shared trace: strided sweeps (reused) plus a random tail, with
    # a sprinkling of writes — enough to exercise fold, kinds, eviction
    addresses: list[int] = []
    for _ in range(6):
        base = rng.randrange(1 << 12)
        stride = rng.randint(1, 300)
        vector = [base + i * stride for i in range(200)]
        addresses.extend(vector * 2)
    addresses.extend(rng.randrange(1 << 11) for _ in range(500))
    writes = [rng.random() < 0.2 for _ in addresses]

    metrics: dict[str, float] = {}
    for name, cache in caches.items():
        cache.access_many(np.asarray(addresses, dtype=np.int64),
                          np.asarray(writes, dtype=bool))
        for field in ("hits", "misses", "evictions", "writes"):
            metrics[f"{name}/{field}"] = float(getattr(cache.stats, field))
        for kind in MissKind:
            metrics[f"{name}/miss_kinds/{kind.value}"] = float(
                cache.stats.miss_kinds[kind])
    return metrics


def _zoo_metrics() -> dict[str, float]:
    """Replay statistics of the zoo organisations on fixed seeded traces,
    plus small collision-law and hierarchy-timing numbers — everything
    integer or seed-deterministic, so pinned exactly."""
    import random

    from repro.analytical.hashed import (
        exact_colliding_lines,
        second_sweep_misses,
    )
    from repro.cache import (
        BicameralCache,
        HashedIndexCache,
        MissKind,
        TwoLevelCache,
    )

    bicameral = BicameralCache(scalar_sets=32, vector_c=7)
    bicameral.mark_vector(1 << 16, (1 << 16) + 8192)
    caches = {
        "hashed": HashedIndexCache(num_sets=128, seed=11),
        "bicameral": bicameral,
        "l1l2": TwoLevelCache(l1_sets=16, l2_sets=128),
    }
    rng = random.Random(20260808)
    addresses: list[int] = []
    for _ in range(6):
        base = rng.randrange(1 << 12) + rng.choice((0, 1 << 16))
        stride = rng.randint(1, 300)
        vector = [base + i * stride for i in range(200)]
        addresses.extend(vector * 2)
    addresses.extend(rng.randrange(1 << 11) for _ in range(500))
    writes = [rng.random() < 0.2 for _ in addresses]

    metrics: dict[str, float] = {}
    for name, cache in caches.items():
        cache.access_many(np.asarray(addresses, dtype=np.int64),
                          np.asarray(writes, dtype=bool))
        for field in ("hits", "misses", "evictions", "writes"):
            metrics[f"{name}/{field}"] = float(getattr(cache.stats, field))
        for kind in MissKind:
            metrics[f"{name}/miss_kinds/{kind.value}"] = float(
                cache.stats.miss_kinds[kind])
    metrics["l1l2/l1_hits"] = float(caches["l1l2"].l1_hits)
    metrics["l1l2/l2_hits"] = float(caches["l1l2"].l2_hits)
    for seed in (0, 1):
        metrics[f"collision/exact/s64b32/seed={seed}"] = float(
            exact_colliding_lines(32, 64, seed))
        metrics[f"collision/sweep/s64b32/seed={seed}"] = float(
            second_sweep_misses(32, 64, seed))
    return metrics


def _machine_metrics() -> dict[str, float]:
    from repro.analytical.base import MachineConfig
    from repro.analytical.vcm import VCM
    from repro.cache import DirectMappedCache, PrimeMappedCache
    from repro.experiments.simulated_figures import figure7_simulated
    from repro.machine import CCMachine, MMMachine, VCMDriver

    metrics: dict[str, float] = {}
    vcm = VCM(blocking_factor=192, reuse_factor=3, p_ds=0.2, s2="random",
              p_stride1_s1=0.25, p_stride1_s2=0.25)
    config = MachineConfig(num_banks=16, memory_access_time=12,
                           cache_lines=128)
    machines = {
        "mm": MMMachine(config),
        "cc-direct": CCMachine(config, DirectMappedCache(
            num_lines=128, classify_misses=False)),
        "cc-prime": CCMachine(
            config.with_(cache_lines=127),
            PrimeMappedCache(c=7, classify_misses=False)),
    }
    for name, machine in machines.items():
        report = VCMDriver(machine, seed=3).run(vcm, problem_size=384).report
        for field in ("cycles", "results", "bank_stall_cycles",
                      "miss_stall_cycles", "store_stall_cycles",
                      "overhead_cycles", "cache_hits", "cache_misses"):
            metrics[f"{name}/{field}"] = float(getattr(report, field))

    grid = figure7_simulated([16], block=256, reuse=4, seeds=2, blocks=2)
    for series in grid.series:
        metrics[f"fig7sim/{series.label}/x=16"] = float(series.values[0])
    return metrics


METRIC_SETS: dict[str, MetricSet] = {
    ms.name: ms
    for ms in (
        MetricSet("figures", 1e-9, _figures_metrics,
                  "every point of every analytical figure (Eqs. 1-8)"),
        MetricSet("replay", 0.0, _replay_metrics,
                  "cache statistics of fixed seeded traces"),
        MetricSet("machine", 1e-9, _machine_metrics,
                  "cycle counts of seeded VCM runs on the machines"),
        MetricSet("zoo", 0.0, _zoo_metrics,
                  "replay statistics and collision laws of the zoo "
                  "organisations (bicameral, hashed, two-level)"),
    )
}


def compute_metrics(name: str) -> dict[str, float]:
    """Freshly recompute one metric set."""
    return METRIC_SETS[name].compute()


def _path(name: str, golden_dir: Path | None) -> Path:
    return (golden_dir or GOLDEN_DIR) / f"{name}.json"


def bless(golden_dir: Path | None = None,
          names: list[str] | None = None) -> list[Path]:
    """Recompute and rewrite the golden baselines; returns written paths."""
    written = []
    for name in names or sorted(METRIC_SETS):
        metric_set = METRIC_SETS[name]
        path = _path(name, golden_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "metric_set": name,
            "description": metric_set.description,
            "default_tolerance": metric_set.tolerance,
            "tolerances": {},
            "metrics": metric_set.compute(),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def _within(expected: float, actual: float, tolerance: float) -> bool:
    if tolerance == 0.0:
        return expected == actual
    return math.isclose(actual, expected,
                        rel_tol=tolerance, abs_tol=tolerance)


def compare(golden_dir: Path | None = None,
            names: list[str] | None = None) -> list[GoldenDiff]:
    """Diff fresh metric computations against the blessed baselines."""
    diffs: list[GoldenDiff] = []
    for name in names or sorted(METRIC_SETS):
        metric_set = METRIC_SETS[name]
        path = _path(name, golden_dir)
        if not path.exists():
            diffs.append(GoldenDiff(
                metric_set=name, metric="(baseline file)", expected=None,
                actual=None, tolerance=metric_set.tolerance))
            continue
        blessed = json.loads(path.read_text())
        default_tolerance = blessed.get("default_tolerance",
                                        metric_set.tolerance)
        overrides = blessed.get("tolerances", {})
        fresh = metric_set.compute()
        for metric in sorted(set(blessed["metrics"]) | set(fresh)):
            tolerance = overrides.get(metric, default_tolerance)
            expected = blessed["metrics"].get(metric)
            actual = fresh.get(metric)
            if expected is None or actual is None:
                diffs.append(GoldenDiff(name, metric, expected, actual,
                                        tolerance))
            elif not _within(expected, actual, tolerance):
                diffs.append(GoldenDiff(name, metric, expected, actual,
                                        tolerance))
    return diffs
