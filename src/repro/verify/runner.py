"""The seeded differential runner: sweep the oracle registry, report
structured mismatches.

The runner is deliberately small — all domain knowledge lives in the
oracles.  Its contract:

* **Reproducible.**  Case generation draws from a per-oracle
  ``random.Random(f"{seed}:{oracle.name}")`` stream, so one oracle's
  sweep never shifts another's, and a mismatch report names the seed and
  the full case configuration needed to replay it in isolation.
* **Structured.**  Each divergence an oracle returns is wrapped into a
  :class:`~repro.verify.result.Mismatch` carrying the oracle name, the
  case seed, the configuration, and the first diverging value.
* **Total.**  An oracle raising mid-case is itself a finding, not a
  crash: the exception is folded into a mismatch with metric
  ``"exception"``.
"""

from __future__ import annotations

import random
import traceback

from repro.verify.oracles import Oracle, default_oracles
from repro.verify.result import Mismatch, OracleOutcome

__all__ = ["DifferentialRunner"]


class DifferentialRunner:
    """Sweeps oracles over seeded case grids and collects mismatches.

    Args:
        oracles: the oracles to sweep (default: the full registry).
        seed: base seed; each oracle derives its own independent stream.
    """

    def __init__(self, oracles: list[Oracle] | None = None, *,
                 seed: int = 0) -> None:
        self.oracles = default_oracles() if oracles is None else list(oracles)
        self.seed = seed

    def run(self, mode: str = "quick") -> list[OracleOutcome]:
        """Sweep every oracle at ``mode`` depth; one outcome per oracle."""
        return [self.run_oracle(oracle, mode) for oracle in self.oracles]

    def run_oracle(self, oracle: Oracle, mode: str) -> OracleOutcome:
        rng = random.Random(f"{self.seed}:{oracle.name}")
        outcome = OracleOutcome(oracle=oracle.name,
                                description=oracle.description)
        for config in oracle.build_cases(mode, rng):
            outcome.cases += 1
            case_seed = int(config.get("seed", self.seed))
            try:
                divergences = oracle.check_case(config)
            except Exception as exc:  # noqa: BLE001 - a crash is a finding
                outcome.mismatches.append(Mismatch(
                    oracle=oracle.name, seed=case_seed, config=config,
                    metric="exception", expected="no exception",
                    actual=f"{type(exc).__name__}: {exc}",
                    detail=traceback.format_exc(limit=3).strip()))
                continue
            for metric, expected, actual, detail in divergences:
                outcome.mismatches.append(Mismatch(
                    oracle=oracle.name, seed=case_seed, config=config,
                    metric=metric, expected=expected, actual=actual,
                    detail=detail))
        return outcome
