"""The oracle registry: every fast/derived implementation paired with its
reference.

An *oracle* cross-checks two independent computations of the same
quantity and reports the first diverging value.  The registry pins the
four load-bearing pairs of this reproduction (plus the prime-mapping
geometry law):

* ``cache-batch`` — the batched :meth:`repro.cache.base.Cache.access_many`
  fast path against the scalar :meth:`~repro.cache.base.Cache.access`
  state machine, per access and per statistic.
* ``machine-timing`` — the vectorised strip-level timing engine
  (``fast_path=True``) against the per-element scalar machine loop,
  bit-for-bit over the full :class:`~repro.machine.report.ExecutionReport`.
* ``analytical-vs-simulated`` — the analytical CC/MM stall formulas
  against executable caches and banks: exact number-theoretic laws for
  fixed strides, statistical tolerances for the stochastic VCM grid.
* ``congruence`` — :mod:`repro.analytical.congruence` against brute-force
  enumeration of the congruence equations.
* ``prime-geometry`` — :meth:`PrimeMappedCache.lines_touched_by_stride`
  against direct enumeration of the visited line slots.
* ``trace-columnar`` — the block-granular (columnar) trace generators and
  workload kernels against the retained per-reference scalar paths,
  addresses and write flags bit-for-bit.
* ``kernel-backend`` — the three replay/timing/Belady engines
  (``backend="scalar"``/``"numpy"``/``"compiled"``, the last through
  :mod:`repro.kernels`) against each other, bit-for-bit across cache
  statistics, per-access outcomes, machine reports and bank state.
* ``analytical-batched`` — the vectorised surrogate engine
  (:mod:`repro.analytical.batched`) against the scalar analytical stack
  it mirrors, element-wise over grids that always batch several
  distinct ``t_m`` values per call so broadcast-collapse faults cannot
  hide behind a uniform axis.
* ``cache-zoo`` — the zoo organisations (docs/cache-zoo.md):
  bicameral batched routing vs the scalar ``set_of`` at exact range
  boundaries, hashed-index batch mapping vs the seeded scalar hash,
  the birthday-paradox collision law vs measured placements (exact per
  seed, statistical across seeds), L1/L2 hierarchy invariants
  (inclusion, per-level counters, direct-L2 equivalence) and the L2
  hit-time law through the CC machine.

Each oracle supplies ``build_cases(mode, rng)`` (seeded, reproducible
case configurations — plain JSON-safe dicts) and ``check_case(config)``
(pure: rebuild everything from the config, return divergences).  The
:class:`~repro.verify.runner.DifferentialRunner` sweeps them and wraps
divergences into structured :class:`~repro.verify.result.Mismatch`
records.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analytical import congruence
from repro.analytical.base import MachineConfig
from repro.analytical.mm import MMModel, self_stalls_for_stride
from repro.analytical.set_assoc import SetAssociativeModel
from repro.cache import (
    DirectMappedCache,
    FullyAssociativeCache,
    MissKind,
    PrimeMappedCache,
    SetAssociativeCache,
)
from repro.machine.ops import LoadPair, VectorCompute, VectorLoad, VectorStore
from repro.machine.vector_machine import CCMachine, MMMachine
from repro.machine.vcm_driver import VCMDriver
from repro.analytical.vcm import VCM
from repro.memory.banks import InterleavedMemory

__all__ = ["Oracle", "ORACLES", "Divergence", "default_oracles"]

#: ``(metric, expected, actual, detail)`` — one diverging value.
Divergence = tuple


@dataclass(frozen=True)
class Oracle:
    """One fast/derived implementation paired with its reference.

    Attributes:
        name: registry key (stable; mutation catalogue refers to it).
        description: what pair of implementations is cross-checked.
        build_cases: ``(mode, rng) -> list[config]`` — seeded sweep of
            JSON-safe case configurations (each carries its own ``seed``).
        check_case: ``config -> list[Divergence]`` — pure differential
            check of one case; empty list means agreement.
    """

    name: str
    description: str
    build_cases: Callable[[str, random.Random], list[dict]]
    check_case: Callable[[dict], list[Divergence]]


def _case_counts(mode: str, quick: int, deep: int) -> int:
    if mode not in ("quick", "deep"):
        raise ValueError("mode must be 'quick' or 'deep'")
    return quick if mode == "quick" else deep


# ---------------------------------------------------------------------------
# cache-batch: Cache.access_many vs scalar Cache.access
# ---------------------------------------------------------------------------

_CACHE_KINDS = ("direct", "prime", "set2", "full")


def _make_case_cache(config: dict):
    kind = config["cache"]
    line_size = config["line_size"]
    classify = config["classify"]
    write_allocate = config["write_allocate"]
    if kind == "direct":
        return DirectMappedCache(
            num_lines=config["lines"], line_size_words=line_size,
            classify_misses=classify, write_allocate=write_allocate)
    if kind == "prime":
        return PrimeMappedCache(
            c=config["c"], line_size_words=line_size,
            classify_misses=classify, write_allocate=write_allocate)
    if kind == "set2":
        return SetAssociativeCache(
            num_sets=config["lines"] // 2, num_ways=2,
            line_size_words=line_size, classify_misses=classify,
            write_allocate=write_allocate)
    if kind == "full":
        return FullyAssociativeCache(
            num_lines=config["lines"], line_size_words=line_size,
            classify_misses=classify, write_allocate=write_allocate)
    raise ValueError(f"unknown cache kind {kind!r}")


def _case_trace(config: dict) -> tuple[list[int], list[bool] | None]:
    """Materialise the case's reference stream from its seeded spec."""
    rng = random.Random(config["seed"])
    pattern = config["pattern"]
    length = config["length"]
    if pattern == "strided":
        base = rng.randrange(1 << 12)
        stride = config["stride"]
        addresses = [base + i * stride
                     for i in range(length)] * config["sweeps"]
    elif pattern == "random":
        span = config["span"]
        addresses = [rng.randrange(span) for _ in range(length)]
    else:  # multistride: several vectors, fresh base+stride each, 2 sweeps
        addresses = []
        for _ in range(4):
            base = rng.randrange(1 << 12)
            stride = rng.randint(1, config["span"])
            vector = [base + i * stride for i in range(length // 4)]
            addresses.extend(vector * config["sweeps"])
    write_frac = config["write_frac"]
    if write_frac == 0:
        return addresses, None
    return addresses, [rng.random() < write_frac for _ in addresses]


def _cache_batch_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 3, 12)
    # pinned: a dense reused sweep over a small prime cache, so any fold
    # fault in the batched set mapping diverges from the scalar path
    # regardless of what the random grid draws
    cases = [{
        "cache": "prime", "c": 5, "lines": 32, "line_size": 1,
        "classify": True, "write_allocate": True, "pattern": "strided",
        "length": 64, "stride": 1, "sweeps": 2, "span": 64,
        "write_frac": 0.0, "seed": 0,
    }]
    for _ in range(rounds):
        for kind in _CACHE_KINDS:
            pattern = rng.choice(("strided", "random", "multistride"))
            cases.append({
                "cache": kind,
                "c": rng.choice((5, 7)),
                "lines": rng.choice((32, 128)),
                "line_size": rng.choice((1, 4)),
                "classify": rng.random() < 0.75,
                "write_allocate": rng.random() < 0.75,
                "pattern": pattern,
                "length": rng.choice((64, 256)),
                "stride": rng.randint(1, 200),
                "sweeps": rng.randint(1, 3),
                "span": rng.choice((64, 1024)),
                "write_frac": rng.choice((0.0, 0.25)),
                "seed": rng.randrange(1 << 30),
            })
    return cases


_STAT_FIELDS = ("accesses", "hits", "misses", "reads", "writes", "evictions")


def _check_cache_batch(config: dict) -> list[Divergence]:
    return _diff_batch_vs_scalar(
        lambda: _make_case_cache(config), *_case_trace(config),
        "Cache.access_many vs Cache.access (repro/cache/base.py)")


def _diff_batch_vs_scalar(build: Callable, addresses, writes,
                          detail: str) -> list[Divergence]:
    """Differential core: one scalar-replayed instance vs one batched."""
    reference = build()
    candidate = build()

    ref_hits, ref_kinds = [], []
    from repro.cache.base import MISS_KIND_CODES
    for i, address in enumerate(addresses):
        result = reference.access(
            address, write=writes is not None and writes[i])
        ref_hits.append(result.hit)
        ref_kinds.append(0 if result.miss_kind is None
                         else MISS_KIND_CODES[result.miss_kind])

    batch = candidate.access_many(
        np.asarray(addresses, dtype=np.int64),
        None if writes is None else np.asarray(writes, dtype=bool),
        return_hits=True, return_kinds=True)

    for field in _STAT_FIELDS:
        expected = getattr(reference.stats, field)
        actual = getattr(candidate.stats, field)
        if expected != actual:
            return [(f"stats.{field}", expected, actual, detail)]
        if getattr(batch.delta, field) != expected:
            return [(f"delta.{field}", expected,
                     getattr(batch.delta, field), detail)]
    for kind in MissKind:
        expected = reference.stats.miss_kinds[kind]
        actual = candidate.stats.miss_kinds[kind]
        if expected != actual:
            return [(f"stats.miss_kinds[{kind.value}]", expected, actual,
                     detail)]
    batch_hits = batch.hits.tolist()
    for i, (expected, actual) in enumerate(zip(ref_hits, batch_hits)):
        if expected != actual:
            return [(f"hits[{i}]", expected, actual, detail)]
    batch_kinds = batch.miss_kinds.tolist()
    for i, (expected, actual) in enumerate(zip(ref_kinds, batch_kinds)):
        if expected != actual:
            return [(f"miss_kinds[{i}]", expected, actual, detail)]
    ref_resident = reference.resident_lines()
    cand_resident = candidate.resident_lines()
    if ref_resident != cand_resident:
        delta = sorted(ref_resident ^ cand_resident)[:4]
        return [("resident_lines", sorted(ref_resident)[:4],
                 sorted(cand_resident)[:4],
                 f"{detail}; symmetric difference starts {delta}")]
    return []


# ---------------------------------------------------------------------------
# machine-timing: vectorised strip engine vs scalar machine loop
# ---------------------------------------------------------------------------

_REPORT_FIELDS = (
    "cycles", "elements", "results", "bank_stall_cycles",
    "miss_stall_cycles", "store_stall_cycles", "overhead_cycles",
    "cache_hits", "cache_misses",
)


def _make_case_machine(config: dict, fast_path: bool):
    machine_config = MachineConfig(
        num_banks=config["banks"],
        memory_access_time=config["t_m"],
        cache_lines=config["lines"],
    )
    depth = config["write_buffer_depth"]
    if config["machine"] == "mm":
        return MMMachine(machine_config, write_buffer_depth=depth,
                         fast_path=fast_path)
    if config["machine"] == "cc-direct":
        cache = DirectMappedCache(num_lines=config["lines"])
    else:
        cache = PrimeMappedCache(c=config["c"])
        machine_config = machine_config.with_(
            cache_lines=cache.total_lines)
    return CCMachine(machine_config, cache, write_buffer_depth=depth,
                     fast_path=fast_path)


def _case_ops(config: dict):
    """Deterministic op list from the case's seeded spec.

    Always includes a stride-``M`` load (every element in one bank — the
    worst bank-busy pattern) so dropped-stall faults cannot hide, a
    re-walk of the first vector with ``expect_cached=True`` (conflict
    stalls on a CC machine), a mismatched-length double stream, and a
    store sweep.
    """
    rng = random.Random(config["seed"])
    banks = config["banks"]
    base = rng.randrange(1 << 10)
    stride = rng.choice((1, 2, banks // 2, banks, banks + 1))
    length = rng.choice((48, 130))
    ops = [
        VectorLoad(base=base, stride=stride, length=length),
        VectorLoad(base=rng.randrange(1 << 10), stride=banks, length=80),
        VectorLoad(base=base, stride=stride, length=length,
                   expect_cached=True),
        LoadPair(
            VectorLoad(base=rng.randrange(1 << 10), stride=rng.randint(1, 8),
                       length=40),
            VectorLoad(base=rng.randrange(1 << 10), stride=banks,
                       length=rng.choice((24, 56)), counts_results=False),
        ),
        VectorStore(base=rng.randrange(1 << 10), stride=rng.randint(1, 4),
                    length=64),
        VectorCompute(length=32),
    ]
    return ops


def _machine_timing_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 2, 8)
    cases = []
    for _ in range(rounds):
        for machine in ("mm", "cc-direct", "cc-prime"):
            for kind in ("ops", "vcm"):
                cases.append({
                    "machine": machine,
                    "kind": kind,
                    "banks": rng.choice((8, 16)),
                    "t_m": rng.choice((4, 12, 20)),
                    "lines": 128,
                    "c": 7,
                    "write_buffer_depth": rng.choice((None, 4)),
                    "block": rng.choice((96, 160)),
                    "reuse": rng.choice((2, 3)),
                    "p_ds": rng.choice((0.0, 0.25)),
                    "seed": rng.randrange(1 << 30),
                })
    return cases


def _check_machine_timing(config: dict) -> list[Divergence]:
    fast = _make_case_machine(config, fast_path=True)
    slow = _make_case_machine(config, fast_path=False)
    detail = ("vectorised strip engine vs scalar reference loop "
              "(repro/machine/vector_machine.py)")
    if config["kind"] == "ops":
        report_fast = fast.execute(_case_ops(config))
        report_slow = slow.execute(_case_ops(config))
    else:
        vcm = VCM(
            blocking_factor=config["block"],
            reuse_factor=config["reuse"],
            p_ds=config["p_ds"],
            s2=None if config["p_ds"] == 0 else "random",
        )
        seed = config["seed"]
        report_fast = VCMDriver(fast, seed=seed).run(
            vcm, problem_size=2 * config["block"]).report
        report_slow = VCMDriver(slow, seed=seed).run(
            vcm, problem_size=2 * config["block"]).report
        detail += " driven by VCMDriver"
    for field in _REPORT_FIELDS:
        expected = getattr(report_slow, field)
        actual = getattr(report_fast, field)
        if expected != actual:
            return [(f"report.{field}", expected, actual, detail)]
    if slow.cycle != fast.cycle:
        return [("machine.cycle", slow.cycle, fast.cycle, detail)]
    for field in ("accesses", "stall_cycles"):
        expected = getattr(slow.memory.stats, field)
        actual = getattr(fast.memory.stats, field)
        if expected != actual:
            return [(f"memory.stats.{field}", expected, actual, detail)]
    if slow.memory.stats.bank_accesses != fast.memory.stats.bank_accesses:
        return [("memory.stats.bank_accesses",
                 slow.memory.stats.bank_accesses,
                 fast.memory.stats.bank_accesses, detail)]
    return []


# ---------------------------------------------------------------------------
# analytical-vs-simulated: closed forms vs executable caches and banks
# ---------------------------------------------------------------------------

def _reuse_sweep_misses(cache, block: int, stride: int) -> int:
    """Misses of the second sweep over one strided vector."""
    addresses = [i * stride for i in range(block)]
    for address in addresses:
        cache.access(address)
    before = cache.stats.misses
    for address in addresses:
        cache.access(address)
    return cache.stats.misses - before


def _analytical_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 4, 16)
    # pinned: stride == M puts every element in one bank (the maximal
    # bank-busy pattern), and stride == 2^c - 1 is the prime cache's one
    # pathological stride — the two strides a stall/modulus fault cannot
    # dodge
    cases = [
        {"kind": "mm-strip", "banks": 8, "t_m": 16, "stride": 8, "seed": 0},
        {"kind": "cc-prime-stride", "c": 5, "t_m": 16, "block": 20,
         "stride": 31, "seed": 0},
    ]
    for _ in range(rounds):
        cases.append({
            "kind": "mm-strip",
            "banks": rng.choice((8, 16, 32, 64)),
            "t_m": rng.choice((8, 16, 24, 48)),
            "stride": rng.randint(1, 96),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "cc-direct-stride",
            "lines": rng.choice((64, 128)),
            "t_m": 16,
            "block": rng.randint(2, 128),
            "stride": rng.randint(1, 512),
            "seed": rng.randrange(1 << 30),
        })
        c = rng.choice((5, 7))
        value = (1 << c) - 1
        cases.append({
            "kind": "cc-prime-stride",
            "c": c,
            "t_m": 16,
            "block": rng.randint(2, value),
            "stride": rng.choice(
                (rng.randint(1, 4 * value), value, 2 * value, 3 * value)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "mm-closed-vs-sum",
            "banks": rng.choice((16, 32, 64)),
            "t_m": rng.choice((4, 8, 16, 32)),
            "seed": rng.randrange(1 << 30),
        })
    # the stochastic VCM grid is expensive: a fixed handful of points
    depth = _case_counts(mode, 1, 2)
    grid = [("mm", 0.35), ("prime", 0.35), ("direct", 0.9)]
    for model, tolerance in grid:
        for t_m in ((8,) if depth == 1 else (8, 16)):
            cases.append({
                "kind": "validation",
                "model": model,
                "t_m": t_m,
                "block": 512,
                "seeds": 4 if depth == 1 else 8,
                "blocks": 3 if depth == 1 else 4,
                "tolerance": tolerance,
                "seed": 0,
            })
    return cases


def _check_analytical(config: dict) -> list[Divergence]:
    kind = config["kind"]
    if kind == "mm-strip":
        machine_config = MachineConfig(
            num_banks=config["banks"],
            memory_access_time=config["t_m"], cache_lines=128)
        stride = config["stride"]
        memory = InterleavedMemory(config["banks"], config["t_m"])
        mvl = machine_config.mvl
        addresses = np.arange(mvl, dtype=np.int64) * stride
        warm = memory.service_many(addresses, 0, stride=stride)
        steady = memory.service_many(
            addresses + mvl * stride, warm.final_cycle, stride=stride)
        predicted = self_stalls_for_stride(stride, machine_config)
        if steady.stall_cycles != predicted:
            return [("mm.steady_strip_stalls", steady.stall_cycles,
                     predicted,
                     "analytical/mm.self_stalls_for_stride vs "
                     "memory/banks.InterleavedMemory (warmed strip)")]
        return []
    if kind == "cc-direct-stride":
        lines, t_m = config["lines"], config["t_m"]
        model = SetAssociativeModel(
            MachineConfig(num_banks=32, memory_access_time=t_m,
                          cache_lines=lines), ways=1)
        cache = DirectMappedCache(num_lines=lines, classify_misses=False)
        measured = _reuse_sweep_misses(cache, config["block"],
                                       config["stride"])
        predicted = model.self_stalls_for_stride(
            config["block"], config["stride"]) / t_m
        if measured != predicted:
            return [("direct.reuse_sweep_misses", measured, predicted,
                     "analytical/set_assoc.SetAssociativeModel vs "
                     "cache/direct.DirectMappedCache replay")]
        return []
    if kind == "cc-prime-stride":
        from repro.analytical.cc import PrimeMappedModel

        c, t_m = config["c"], config["t_m"]
        value = (1 << c) - 1
        block, stride = config["block"], config["stride"]
        cache = PrimeMappedCache(c=c, classify_misses=False)
        measured = _reuse_sweep_misses(cache, block, stride)
        # the conflict-freedom law: a reused sweep of B <= C elements
        # misses everywhere iff C divides the stride, else nowhere
        law = block if (stride != 0 and stride % value == 0) else 0
        if measured != law:
            return [("prime.reuse_sweep_misses", law, measured,
                     "prime conflict-freedom law vs "
                     "cache/prime.PrimeMappedCache replay")]
        model = PrimeMappedModel(
            MachineConfig(num_banks=32, memory_access_time=t_m,
                          cache_lines=value))
        stalls = model.self_stalls_for_stride(block, stride)
        # Eq. (8) counts the B - 1 refills after the first; the replayed
        # second sweep counts all B — same law, off by exactly one fill.
        expected = (block - 1) * t_m if measured else 0.0
        if stalls != expected:
            return [("prime.model_stalls", expected, stalls,
                     "analytical/cc.PrimeMappedModel.self_stalls_for_stride"
                     " vs replayed reuse misses")]
        return []
    if kind == "mm-closed-vs-sum":
        model = MMModel(MachineConfig(
            num_banks=config["banks"],
            memory_access_time=config["t_m"], cache_lines=128))
        closed = model.self_interference(0.25, "random")
        summed = model.self_interference_sum_form(0.25)
        if not math.isclose(closed, summed, rel_tol=1e-9, abs_tol=1e-9):
            return [("mm.I_s_closed_form", summed, closed,
                     "Eq.(2) closed form vs divisor-function sum "
                     "(analytical/mm.py)")]
        return []
    if kind == "validation":
        from repro.experiments.validation import validate_point

        point = validate_point(
            config["model"], config["t_m"], config["block"],
            seeds=config["seeds"], blocks=config["blocks"])
        if point.relative_error >= config["tolerance"]:
            return [(f"validation.{config['model']}.relative_error",
                     f"< {config['tolerance']}", point.relative_error,
                     f"predicted {point.predicted:.3f} vs measured "
                     f"{point.measured:.3f} "
                     "(experiments/validation.validate_point)")]
        return []
    raise ValueError(f"unknown analytical case kind {kind!r}")


# ---------------------------------------------------------------------------
# congruence: closed forms vs brute-force enumeration
# ---------------------------------------------------------------------------

def _congruence_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 6, 40)
    # pinned: gcd(6, 12) = 6 solutions — a solver that loses the
    # multi-solution family fails here every run
    cases = [{"kind": "solve", "a": 6, "b": 0, "m": 12, "seed": 0}]
    for _ in range(rounds):
        m = rng.randint(2, 64)
        cases.append({
            "kind": "solve",
            "a": rng.randint(0, 2 * m),
            "b": rng.randint(0, 2 * m),
            "m": m,
            "seed": rng.randrange(1 << 30),
        })
        banks = rng.choice((4, 8, 16))
        cases.append({
            "kind": "cross",
            "s1": rng.randint(1, 2 * banks),
            "s2": rng.randint(1, 2 * banks),
            "d": rng.randint(1, banks),
            "banks": banks,
            "mvl": rng.choice((16, 32, 64)),
            "t_m": rng.choice((4, 8, 12)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "average-vs-closed",
            "s1": rng.randint(1, 2 * banks),
            "s2": rng.randint(1, 2 * banks),
            "banks": banks,
            "mvl": rng.choice((16, 32)),
            "t_m": rng.choice((4, 8)),
            "seed": rng.randrange(1 << 30),
        })
    return cases


def _check_congruence(config: dict) -> list[Divergence]:
    kind = config["kind"]
    if kind == "solve":
        a, b, m = config["a"], config["b"], config["m"]
        brute = [x for x in range(m) if (a * x - b) % m == 0]
        solved = sorted(congruence.solve_linear_congruence(a, b, m))
        if solved != brute:
            return [("solve_linear_congruence", brute, solved,
                     "analytical/congruence.solve_linear_congruence vs "
                     "brute-force enumeration")]
        return []
    if kind == "cross":
        s1, s2, d = config["s1"], config["s2"], config["d"]
        banks, mvl, t_m = config["banks"], config["mvl"], config["t_m"]
        brute = sum(
            t_m - abs(i - j)
            for i in range(mvl) for j in range(mvl)
            if (s1 * i - s2 * j - d) % banks == 0 and abs(i - j) < t_m
        )
        fast = congruence.cross_stalls(s1, s2, d, banks, mvl, t_m)
        if fast != brute:
            return [("cross_stalls", brute, fast,
                     "analytical/congruence.cross_stalls vs O(MVL^2) "
                     "double loop")]
        return []
    if kind == "average-vs-closed":
        s1, s2 = config["s1"], config["s2"]
        banks, mvl, t_m = config["banks"], config["mvl"], config["t_m"]
        averaged = congruence.average_cross_stalls(s1, s2, banks, mvl, t_m)
        closed = congruence.expected_cross_stalls(banks, mvl, t_m)
        if not math.isclose(averaged, closed, rel_tol=1e-12, abs_tol=1e-9):
            return [("expected_cross_stalls", averaged, closed,
                     "closed form vs stride-dependent average "
                     "(the paper's stride-independence collapse)")]
        return []
    raise ValueError(f"unknown congruence case kind {kind!r}")


# ---------------------------------------------------------------------------
# prime-geometry: lines_touched_by_stride vs enumeration
# ---------------------------------------------------------------------------

def _prime_geometry_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 8, 48)
    # pinned: a fractional-line stride with two line-offset phases
    # (true footprint 2), which a phase-collapsed count reports as 1
    cases = [{"c": 7, "line_size": 4, "stride": 254, "seed": 0}]
    for _ in range(rounds):
        c = rng.choice((5, 7))
        value = (1 << c) - 1
        line_size = rng.choice((1, 2, 4, 8))
        stride = rng.choice((
            rng.randint(1, 4 * value),
            value, 2 * value,
            value * max(1, line_size // 2),  # fractional line phases
            line_size, 2 * line_size,
        ))
        cases.append({
            "c": c,
            "line_size": line_size,
            "stride": stride,
            "seed": rng.randrange(1 << 30),
        })
    return cases


def _check_prime_geometry(config: dict) -> list[Divergence]:
    cache = PrimeMappedCache(
        c=config["c"], line_size_words=config["line_size"],
        classify_misses=False)
    stride = config["stride"]
    value = cache.modulus.value
    shift = config["line_size"].bit_length() - 1
    elements = 2 * value * config["line_size"] + 8
    visited = {((k * stride) >> shift) % value for k in range(elements)}
    claimed = cache.lines_touched_by_stride(stride)
    if claimed != len(visited):
        return [("lines_touched_by_stride", len(visited), claimed,
                 "cache/prime.lines_touched_by_stride vs enumeration of "
                 "a base-aligned sweep")]
    return []


# ---------------------------------------------------------------------------
# trace-columnar: block-granular generators vs the scalar reference paths
# ---------------------------------------------------------------------------

_COLUMNAR_TARGETS = (
    "strided", "multistride", "matrix_column", "matrix_row",
    "matrix_diagonal", "row_column_mix", "subblock", "fft_butterflies",
    "naive_matmul", "blocked_matmul", "saxpy", "strided_saxpy",
    "transpose", "blocked_transpose", "jacobi", "dot", "matrix_sums",
    "lu_decompose", "blocked_lu", "fft_radix2", "blocked_fft_2d",
    "spmv_csr", "hash_join", "bfs", "mergesort",
)

#: kernels whose columnar value differs in float rounding only: the FFTs
#: (numpy's SIMD complex multiply rounds the last ulp differently from
#: its scalar multiply) and SpMV (dot-product vs sequential accumulation
#: order); the traces are still compared bit-for-bit
_COLUMNAR_APPROX_VALUES = ("fft_radix2", "blocked_fft_2d", "spmv_csr")


def _trace_columnar_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 1, 3)
    # pinned: the length-48 double sweep diverges under any block-boundary
    # fault in append_block regardless of what the random grid draws
    cases = [{"target": "multistride", "seed": 0}]
    for _ in range(rounds):
        for target in _COLUMNAR_TARGETS:
            cases.append({"target": target, "seed": rng.randrange(1 << 30)})
    return cases


def _run_columnar_target(target: str, seed: int, columnar: bool):
    """Run one generator/kernel from its seeded spec; ``(value, trace)``."""
    from repro.trace import patterns
    from repro.workloads.fft import blocked_fft_2d, fft_radix2
    from repro.workloads.irregular import bfs, hash_join, mergesort, spmv_csr
    from repro.workloads.lu import blocked_lu, lu_decompose
    from repro.workloads.matmul import blocked_matmul, naive_matmul
    from repro.workloads.reduction import dot, matrix_sums
    from repro.workloads.saxpy import saxpy, strided_saxpy
    from repro.workloads.stencil import jacobi
    from repro.workloads.transpose import blocked_transpose, transpose

    py = random.Random(seed)
    rng = np.random.default_rng(seed)
    if target == "strided":
        return None, patterns.strided(
            py.randrange(1 << 16), py.randint(1, 64), 48, sweeps=2,
            columnar=columnar)
    if target == "multistride":
        return None, patterns.multistride(
            24, 3, 50, seed=seed, columnar=columnar)
    if target == "matrix_column":
        return None, patterns.matrix_column(
            py.randint(8, 40), 16, py.randrange(8), columnar=columnar)
    if target == "matrix_row":
        return None, patterns.matrix_row(
            py.randint(8, 40), 16, py.randrange(8), columnar=columnar)
    if target == "matrix_diagonal":
        return None, patterns.matrix_diagonal(
            py.randint(8, 40), 16, columnar=columnar)
    if target == "row_column_mix":
        return None, patterns.row_column_mix(
            py.randint(8, 40), 12, accesses=6, seed=seed, columnar=columnar)
    if target == "subblock":
        return None, patterns.subblock(
            py.randint(8, 40), 5, 4, sweeps=2, columnar=columnar)
    if target == "fft_butterflies":
        return None, patterns.fft_butterflies(32, columnar=columnar)
    if target == "naive_matmul":
        return naive_matmul(rng.standard_normal((6, 6)),
                            rng.standard_normal((6, 6)), columnar=columnar)
    if target == "blocked_matmul":
        return blocked_matmul(rng.standard_normal((8, 8)),
                              rng.standard_normal((8, 8)), 4,
                              columnar=columnar)
    if target == "saxpy":
        return saxpy(1.5, rng.standard_normal(33), rng.standard_normal(33),
                     columnar=columnar)
    if target == "strided_saxpy":
        return strided_saxpy(0.75, rng.standard_normal(31),
                             rng.standard_normal(31), stride_x=3,
                             stride_y=2, columnar=columnar)
    if target == "transpose":
        return transpose(rng.standard_normal((6, 9)), columnar=columnar)
    if target == "blocked_transpose":
        return blocked_transpose(rng.standard_normal((8, 8)), 4,
                                 columnar=columnar)
    if target == "jacobi":
        return jacobi(rng.standard_normal((7, 6)), 2, columnar=columnar)
    if target == "dot":
        return dot(rng.standard_normal(29), rng.standard_normal(29),
                   columnar=columnar)
    if target == "matrix_sums":
        return matrix_sums(rng.standard_normal((7, 7)), repeats=2,
                           columnar=columnar)
    if target == "lu_decompose":
        return lu_decompose(rng.standard_normal((8, 8)) + 8 * np.eye(8),
                            columnar=columnar)
    if target == "blocked_lu":
        return blocked_lu(rng.standard_normal((8, 8)) + 8 * np.eye(8), 4,
                          columnar=columnar)
    if target == "fft_radix2":
        return fft_radix2(rng.standard_normal(32)
                          + 1j * rng.standard_normal(32), columnar=columnar)
    if target == "blocked_fft_2d":
        return blocked_fft_2d(rng.standard_normal(32)
                              + 1j * rng.standard_normal(32), 4,
                              columnar=columnar)
    if target == "spmv_csr":
        return spmv_csr(rows=py.randint(8, 24), cols=32,
                        nnz_per_row=py.randint(1, 6), seed=seed,
                        columnar=columnar)
    if target == "hash_join":
        return hash_join(build_rows=py.randint(8, 32), probe_rows=48,
                         buckets=py.choice((4, 16)), seed=seed,
                         columnar=columnar)
    if target == "bfs":
        return bfs(nodes=py.randint(16, 64), avg_degree=py.randint(1, 4),
                   seed=seed, columnar=columnar)
    if target == "mergesort":
        return mergesort(n=py.randint(5, 64), seed=seed, columnar=columnar)
    raise ValueError(f"unknown columnar target {target!r}")


def _check_trace_columnar(config: dict) -> list[Divergence]:
    target, seed = config["target"], config["seed"]
    value_col, trace_col = _run_columnar_target(target, seed, True)
    value_ref, trace_ref = _run_columnar_target(target, seed, False)
    detail = (f"columnar {target} vs retained scalar reference path "
              "(repro/trace/patterns.py, repro/workloads/)")
    if len(trace_col) != len(trace_ref):
        return [(f"{target}.len", len(trace_ref), len(trace_col), detail)]
    addr_col, flags_col = trace_col.as_arrays()
    addr_ref, flags_ref = trace_ref.as_arrays()
    if not np.array_equal(addr_col, addr_ref):
        index = int(np.argmax(addr_col != addr_ref))
        return [(f"{target}.addresses[{index}]", int(addr_ref[index]),
                 int(addr_col[index]), detail)]
    dense_col = (flags_col if flags_col is not None
                 else np.zeros(addr_col.size, dtype=bool))
    dense_ref = (flags_ref if flags_ref is not None
                 else np.zeros(addr_ref.size, dtype=bool))
    if not np.array_equal(dense_col, dense_ref):
        index = int(np.argmax(dense_col != dense_ref))
        return [(f"{target}.writes[{index}]", bool(dense_ref[index]),
                 bool(dense_col[index]), detail)]
    if value_col is None:
        return []
    if target in _COLUMNAR_APPROX_VALUES:
        if not np.allclose(value_col, value_ref, rtol=1e-9, atol=1e-12):
            worst = float(np.abs(np.asarray(value_col)
                                 - np.asarray(value_ref)).max())
            return [(f"{target}.values", "allclose", worst, detail)]
        return []
    if isinstance(value_col, dict):
        for key in value_col:
            if value_col[key] != value_ref[key]:
                return [(f"{target}.value[{key}]", value_ref[key],
                         value_col[key], detail)]
        return []
    if isinstance(value_col, float):
        if value_col != value_ref:
            return [(f"{target}.value", value_ref, value_col, detail)]
        return []
    if not np.array_equal(np.asarray(value_col), np.asarray(value_ref)):
        return [(f"{target}.values", "bit-equal", "diverged", detail)]
    return []


# ---------------------------------------------------------------------------
# kernel-backend: scalar vs numpy vs compiled replay/timing/Belady engines
# ---------------------------------------------------------------------------

_BACKENDS = ("scalar", "numpy", "compiled")

_KERNEL_STAT_FIELDS = _STAT_FIELDS


def _kernel_backend_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 1, 4)
    # pinned: (a) a classifier-free direct-mapped write sweep — the only
    # configuration that reaches the compiled one-way kernel's
    # write-allocate handling, so a dropped-allocation fault there cannot
    # dodge the sweep; (b) an over-capacity random OPT case with dead
    # lines, where a Belady kernel that mistreats the never-reused
    # sentinel pins the wrong lines every run; (c) a prime CC machine on
    # the batched timing path.
    cases = [
        {"kind": "replay", "cache": "direct", "c": 5, "lines": 32,
         "line_size": 1, "classify": False, "write_allocate": True,
         "pattern": "strided", "length": 64, "stride": 3, "sweeps": 2,
         "span": 64, "write_frac": 0.25, "seed": 0},
        {"kind": "belady", "total_lines": 16, "num_sets": 4,
         "line_size": 1, "pattern": "random", "length": 256,
         "span": 128, "write_frac": 0.25, "stride": 1, "sweeps": 1,
         "seed": 0},
        {"kind": "machine", "machine": "cc-prime", "banks": 8, "t_m": 12,
         "lines": 128, "c": 7, "write_buffer_depth": None,
         "trace_len": 2000, "span": 4096, "write_frac": 0.25, "seed": 0},
    ]
    for _ in range(rounds):
        for kind in _CACHE_KINDS:
            cases.append({
                "kind": "replay",
                "cache": kind,
                "c": rng.choice((5, 7)),
                "lines": rng.choice((32, 128)),
                "line_size": rng.choice((1, 4)),
                "classify": rng.random() < 0.5,
                "write_allocate": rng.random() < 0.75,
                "pattern": rng.choice(("strided", "random", "multistride")),
                "length": rng.choice((64, 256)),
                "stride": rng.randint(1, 200),
                "sweeps": rng.randint(1, 3),
                "span": rng.choice((64, 1024)),
                "write_frac": rng.choice((0.0, 0.25)),
                "seed": rng.randrange(1 << 30),
            })
        cases.append({
            "kind": "belady",
            "total_lines": rng.choice((16, 32)),
            "num_sets": rng.choice((1, 4)),
            "line_size": rng.choice((1, 4)),
            "pattern": rng.choice(("strided", "random")),
            "length": 256,
            "stride": rng.randint(1, 40),
            "sweeps": 2,
            "span": rng.choice((128, 512)),
            "write_frac": rng.choice((0.0, 0.25)),
            "seed": rng.randrange(1 << 30),
        })
        for machine in ("mm", "cc-direct", "cc-prime"):
            cases.append({
                "kind": "machine",
                "machine": machine,
                "banks": rng.choice((8, 16)),
                "t_m": rng.choice((4, 12)),
                "lines": 128,
                "c": 7,
                "write_buffer_depth": None,
                "trace_len": 2000,
                "span": 4096,
                "write_frac": rng.choice((0.0, 0.25)),
                "seed": rng.randrange(1 << 30),
            })
    return cases


def _pairwise_backend_divergence(results: dict, detail: str):
    """First divergence between consecutive backend result dicts."""
    for reference, candidate in (("scalar", "numpy"), ("numpy", "compiled")):
        expected, actual = results[reference], results[candidate]
        for metric in expected:
            if expected[metric] != actual[metric]:
                return [(f"{candidate}-vs-{reference}.{metric}",
                         expected[metric], actual[metric], detail)]
    return None


def _check_kernel_replay(config: dict) -> list[Divergence]:
    addresses, writes = _case_trace(config)
    address_arr = np.asarray(addresses, dtype=np.int64)
    write_arr = None if writes is None else np.asarray(writes, dtype=bool)
    # with a classifier the kind output forces the numpy engine, which is
    # still a valid differential; classifier-free cases run the kernels
    want_kinds = config["classify"]
    results = {}
    for backend in _BACKENDS:
        cache = _make_case_cache(config)
        batch = cache.access_many(
            address_arr, write_arr, return_hits=True,
            return_kinds=want_kinds, backend=backend)
        record = {field: getattr(cache.stats, field)
                  for field in _KERNEL_STAT_FIELDS}
        record["hits_stream"] = batch.hits.tolist()
        if want_kinds:
            record["kinds_stream"] = batch.miss_kinds.tolist()
        record["resident"] = sorted(cache.resident_lines())
        results[backend] = record
    diverged = _pairwise_backend_divergence(
        results,
        "Cache.access_many backend engines (repro/cache/base.py, "
        "repro/kernels/)")
    return diverged or []


def _check_kernel_belady(config: dict) -> list[Divergence]:
    from repro.cache.belady import simulate_opt
    from repro.trace.records import Trace

    addresses, writes = _case_trace(config)
    trace = Trace()
    trace.append_block(
        np.asarray(addresses, dtype=np.int64),
        write=False if writes is None else np.asarray(writes, dtype=bool))
    results = {}
    for backend in _BACKENDS:
        outcome = simulate_opt(
            trace, config["total_lines"], num_sets=config["num_sets"],
            line_size_words=config["line_size"], backend=backend)
        results[backend] = {
            "hits": outcome.stats.hits,
            "misses": outcome.stats.misses,
            "accesses": outcome.stats.accesses,
            "reads": outcome.stats.reads,
            "writes": outcome.stats.writes,
            "evictions": outcome.evictions,
        }
    diverged = _pairwise_backend_divergence(
        results,
        "Belady OPT backend engines (repro/cache/belady.py, "
        "repro/kernels/)")
    return diverged or []


def _check_kernel_machine(config: dict) -> list[Divergence]:
    from repro.machine.trace_runner import run_trace
    from repro.trace.records import Trace

    rng = random.Random(config["seed"])
    span, length = config["span"], config["trace_len"]
    write_frac = config["write_frac"]
    trace = Trace()
    for _ in range(length):
        trace.append(rng.randrange(span), write=rng.random() < write_frac)

    def build(backend: str):
        machine_config = MachineConfig(
            num_banks=config["banks"], memory_access_time=config["t_m"],
            cache_lines=config["lines"])
        if config["machine"] == "mm":
            return MMMachine(machine_config, backend=backend)
        if config["machine"] == "cc-direct":
            cache = DirectMappedCache(num_lines=config["lines"])
        else:
            cache = PrimeMappedCache(c=config["c"])
            machine_config = machine_config.with_(
                cache_lines=cache.total_lines)
        return CCMachine(machine_config, cache, backend=backend)

    results = {}
    for backend in _BACKENDS:
        machine = build(backend)
        ops_report = machine.execute(_case_ops(config))
        trace_report = run_trace(machine, trace, backend=backend)
        record = {}
        for field in _REPORT_FIELDS:
            record[f"ops.{field}"] = getattr(ops_report, field)
            record[f"trace.{field}"] = getattr(trace_report, field)
        record["cycle"] = machine.cycle
        record["memory.accesses"] = machine.memory.stats.accesses
        record["memory.stall_cycles"] = machine.memory.stats.stall_cycles
        record["memory.bank_accesses"] = machine.memory.stats.bank_accesses
        results[backend] = record
    diverged = _pairwise_backend_divergence(
        results,
        "machine timing backend engines (repro/machine/trace_runner.py, "
        "repro/machine/vector_machine.py, repro/kernels/)")
    return diverged or []


def _check_kernel_backend(config: dict) -> list[Divergence]:
    kind = config["kind"]
    if kind == "replay":
        return _check_kernel_replay(config)
    if kind == "belady":
        return _check_kernel_belady(config)
    if kind == "machine":
        return _check_kernel_machine(config)
    raise ValueError(f"unknown kernel-backend case kind {kind!r}")


# ---------------------------------------------------------------------------
# analytical-batched: the vectorised surrogate engine vs the scalar stack
# ---------------------------------------------------------------------------

_BATCHED_MODEL_GRID = (
    ("direct", 64, 1), ("direct", 8192, 1), ("prime", 127, 1),
    ("prime", 8191, 1), ("assoc", 64, 2), ("assoc", 8192, 4),
)

#: CC output metrics compared element-wise against the scalar models.
_BATCHED_CC_KEYS = (
    "element_time", "initial_block_time", "cached_block_time",
    "cycles_per_result", "mm_cycles_per_result", "sweep_misses",
    "miss_ratio",
)


def _analytical_batched_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 2, 8)
    # pinned: a prime grid batching three distinct t_m values with a
    # random second stream — the exact surface where a broadcast
    # collapse (every grid point scored with the first t_m) diverges
    # regardless of what the random grid draws
    cases = [
        {"kind": "cc", "mapping": "prime", "lines": 8191, "ways": 1,
         "banks": 32, "t_m_values": [4, 16, 64], "block": 4096,
         "reuse": 4096.0, "p_ds": 0.1, "footprint_mode": "simple",
         "seed": 0},
        {"kind": "congruence-batch", "count": 64, "seed": 0},
    ]
    for _ in range(rounds):
        mapping, lines, ways = rng.choice(_BATCHED_MODEL_GRID)
        cases.append({
            "kind": "cc",
            "mapping": mapping, "lines": lines, "ways": ways,
            "banks": rng.choice((8, 32, 64)),
            "t_m_values": sorted(rng.sample((4, 8, 16, 32, 64), 2)),
            "block": rng.choice((64, 1024, 4096)),
            "reuse": rng.choice((1.0, 8.0, 64.0)),
            "p_ds": rng.choice((0.0, 0.1)),
            "footprint_mode": rng.choice(("simple", "expected")),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "mm",
            "banks": rng.choice((8, 32, 64)),
            "t_m_values": sorted(rng.sample((4, 8, 16, 31, 64), 2)),
            "block": rng.choice((64, 4096)),
            "reuse": rng.choice((1.0, 8.0)),
            "p_ds": rng.choice((0.0, 0.1)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({"kind": "congruence-batch", "count": 48,
                      "seed": rng.randrange(1 << 30)})
        cases.append({
            "kind": "bandwidth",
            "banks": rng.choice((2, 8, 64)),
            "t_m": rng.choice((2, 16, 40)),
            "p_stride1": rng.choice((0.0, 0.25, 1.0)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "blocking",
            "mapping": mapping, "lines": lines, "ways": ways,
            "t_m": rng.choice((4, 16, 64)),
            "block": rng.choice((1024, 4096)),
            "p_ds": rng.choice((0.0, 0.1)),
            "seed": rng.randrange(1 << 30),
        })
    return cases


def _batched_scalar_model(mapping: str, config, ways: int,
                          footprint_mode: str = "simple"):
    from repro.analytical.cc import DirectMappedModel, PrimeMappedModel

    if mapping == "direct":
        return DirectMappedModel(config, footprint_mode=footprint_mode)
    if mapping == "prime":
        return PrimeMappedModel(config, footprint_mode=footprint_mode)
    return SetAssociativeModel(config, ways, footprint_mode=footprint_mode)


def _check_analytical_batched(config: dict) -> list[Divergence]:
    from repro.analytical import batched
    from repro.analytical.bandwidth import (
        effective_bandwidth_for_stride,
        expected_effective_bandwidth,
    )
    from repro.analytical.missratio import (
        scalar_cached_sweep_misses,
        scalar_workload_miss_ratio,
    )
    from repro.analytical.optimize import optimal_blocking_factor

    kind = config["kind"]
    if kind == "cc":
        # one batched call over every t_m, so a collapsed axis diverges
        mapping, ways = config["mapping"], config["ways"]
        lines, banks = config["lines"], config["banks"]
        t_m = np.array(config["t_m_values"])
        vcm = VCM(blocking_factor=config["block"],
                  reuse_factor=config["reuse"], p_ds=config["p_ds"],
                  s2=("random" if config["p_ds"] else None))
        out = batched.cc_outputs_batch(
            mapping, cache_lines=lines, num_banks=banks, t_m=t_m,
            ways=ways, blocking_factor=vcm.blocking_factor,
            reuse_factor=vcm.reuse_factor, p_ds=vcm.p_ds,
            s2=vcm.s2, footprint_mode=config["footprint_mode"])
        for i, t in enumerate(config["t_m_values"]):
            machine = MachineConfig(num_banks=banks, memory_access_time=t,
                                    cache_lines=lines)
            model = _batched_scalar_model(mapping, machine, ways,
                                          config["footprint_mode"])
            expected = {
                "element_time": model.element_time(vcm),
                "initial_block_time": model.initial_block_time(vcm),
                "cached_block_time": model.cached_block_time(vcm),
                "cycles_per_result": model.cycles_per_result(vcm),
                "mm_cycles_per_result":
                    MMModel(machine).cycles_per_result(vcm),
                "sweep_misses": scalar_cached_sweep_misses(model, vcm),
                "miss_ratio": scalar_workload_miss_ratio(model, vcm),
            }
            for key in _BATCHED_CC_KEYS:
                actual = float(np.broadcast_to(out[key], t_m.shape)[i])
                if not math.isclose(expected[key], actual,
                                    rel_tol=1e-9, abs_tol=1e-12):
                    return [(f"cc.{mapping}.{key}[t_m={t}]",
                             expected[key], actual,
                             "analytical/batched.cc_outputs_batch vs the "
                             "scalar CC/MM models")]
        return []
    if kind == "mm":
        banks = config["banks"]
        t_m = np.array(config["t_m_values"])
        vcm = VCM(blocking_factor=config["block"],
                  reuse_factor=config["reuse"], p_ds=config["p_ds"],
                  s2=("random" if config["p_ds"] else None))
        got = batched.mm_cycles_per_result_batch(
            num_banks=banks, t_m=t_m, mvl=64,
            blocking_factor=vcm.blocking_factor,
            reuse_factor=vcm.reuse_factor, p_ds=vcm.p_ds,
            p_stride1_s1=vcm.p_stride1_s1,
            p_stride1_s2=vcm.p_stride1_s2, s2=vcm.s2)
        for i, t in enumerate(config["t_m_values"]):
            model = MMModel(MachineConfig(num_banks=banks,
                                          memory_access_time=t))
            expected = model.cycles_per_result(vcm)
            actual = float(np.broadcast_to(got, t_m.shape)[i])
            if not math.isclose(expected, actual, rel_tol=1e-9):
                return [(f"mm.cycles_per_result[t_m={t}]", expected, actual,
                         "analytical/batched.mm_cycles_per_result_batch vs "
                         "analytical/mm.MMModel")]
        return []
    if kind == "congruence-batch":
        rng = random.Random(config["seed"])
        count = config["count"]
        triples = [(rng.randrange(64), rng.randrange(64),
                    rng.randrange(1, 64)) for _ in range(count)]
        a, b, m = (np.array(col) for col in zip(*triples))
        counts = batched.solution_count_batch(a, b, m).tolist()
        for triple, actual in zip(triples, counts):
            expected = len(congruence.solve_linear_congruence(*triple))
            if expected != actual:
                return [(f"solution_count_batch{triple}", expected, actual,
                         "analytical/batched.solution_count_batch vs "
                         "analytical/congruence.solve_linear_congruence")]
        cross = [(rng.randrange(33), rng.randrange(33), rng.randrange(33),
                  rng.choice((2, 8, 32)), rng.choice((4, 16, 64)),
                  rng.choice((2, 7, 16))) for _ in range(count)]
        arrays = [np.array(col) for col in zip(*cross)]
        got = batched.cross_stalls_batch(*arrays)
        for case, actual in zip(cross, got.tolist()):
            expected = congruence.cross_stalls(*case)
            if not math.isclose(expected, actual, rel_tol=1e-9,
                                abs_tol=1e-9):
                return [(f"cross_stalls_batch{case}", expected, actual,
                         "analytical/batched.cross_stalls_batch vs "
                         "analytical/congruence.cross_stalls")]
        return []
    if kind == "bandwidth":
        banks, t_m = config["banks"], config["t_m"]
        machine = MachineConfig(num_banks=banks, memory_access_time=t_m)
        strides = np.array([0, 1, 2, 5, 8, -3])
        got = batched.effective_bandwidth_for_stride_batch(
            strides, banks, t_m)
        for s, actual in zip(strides.tolist(), got.tolist()):
            expected = effective_bandwidth_for_stride(s, machine)
            if not math.isclose(expected, actual, rel_tol=1e-9):
                return [(f"effective_bandwidth[stride={s}]", expected,
                         actual, "analytical/batched vs "
                         "analytical/bandwidth (fixed stride)")]
        p1 = config["p_stride1"]
        expected = expected_effective_bandwidth(machine, p_stride1=p1)
        actual = float(batched.expected_effective_bandwidth_batch(
            np.array([banks]), np.array([t_m]), p_stride1=p1)[0])
        if not math.isclose(expected, actual, rel_tol=1e-9):
            return [("expected_effective_bandwidth", expected, actual,
                     "analytical/batched vs analytical/bandwidth "
                     "(expected over random strides)")]
        return []
    if kind == "blocking":
        mapping, ways = config["mapping"], config["ways"]
        lines, t_m = config["lines"], config["t_m"]
        machine = MachineConfig(num_banks=32, memory_access_time=t_m,
                                cache_lines=lines)
        want = optimal_blocking_factor(
            _batched_scalar_model(mapping, machine, ways))
        got = batched.optimal_blocking_factor_batch(
            mapping, cache_lines=np.array([lines]),
            num_banks=np.array([32]), t_m=np.array([t_m]), ways=ways)
        # compare the achieved optimum, not B: ties may pick either arm
        actual = float(got["cycles_per_result"][0])
        if not math.isclose(want.cycles_per_result, actual, rel_tol=1e-9):
            return [("optimal_blocking.cycles_per_result",
                     want.cycles_per_result, actual,
                     "analytical/batched.optimal_blocking_factor_batch vs "
                     "analytical/optimize.optimal_blocking_factor")]
        from repro.analytical.optimize import crossover_memory_time

        block, p_ds = config["block"], config["p_ds"]
        vcm = VCM(blocking_factor=block, reuse_factor=float(block),
                  p_ds=p_ds, s2=("random" if p_ds else None))
        expected = crossover_memory_time(
            lambda t: vcm,
            cache_model_factory=lambda t: _batched_scalar_model(
                mapping, MachineConfig(num_banks=32, memory_access_time=t,
                                       cache_lines=lines), ways),
            mm_model_factory=lambda t: MMModel(
                MachineConfig(num_banks=32, memory_access_time=t,
                              cache_lines=lines)))
        crossover = int(batched.crossover_memory_time_batch(
            mapping, cache_lines=np.array([lines]),
            num_banks=np.array([32]), ways=ways,
            blocking_factor=np.array([block]),
            reuse_factor=np.array([float(block)]),
            p_ds=np.array([p_ds]))[0])
        if crossover != (-1 if expected is None else expected):
            return [("crossover_memory_time", expected, crossover,
                     "analytical/batched.crossover_memory_time_batch vs "
                     "analytical/optimize.crossover_memory_time")]
        return []
    raise ValueError(f"unknown analytical-batched case kind {kind!r}")


# ---------------------------------------------------------------------------
# cache-zoo: bicameral routing, hashed indexing, two-level hierarchies
# ---------------------------------------------------------------------------

def _zoo_cases(mode: str, rng: random.Random) -> list[dict]:
    rounds = _case_counts(mode, 1, 4)
    # pinned: (a) boundary-routing probes — each vector-range edge is
    # probed, evict-conflicted in the scalar half, and re-probed, so a
    # routing fault at either edge flips a hit deterministically; (b) a
    # nonzero hash seed with reuse, so a batch mapping that drops the
    # seed fold diverges from the seeded scalar set_of; (c) the two
    # collision-law points whose closed-form-vs-measured margins were
    # sized against the hash's real bias; (d) the L1/L2 timing law.
    cases = [
        {"kind": "bicameral-replay", "scalar_sets": 4, "vector_c": 3,
         "vector_ways": 1, "scalar_ways": 1, "vector_mapping": "prime",
         "classify": True, "write_allocate": True,
         "ranges": [[1000, 1100], [4000, 4600]],
         "length": 96, "write_frac": 0.25, "seed": 0},
        {"kind": "hashed-replay", "sets": 37, "ways": 1, "line_size": 1,
         "hash_seed": 0x5EED, "classify": True, "write_allocate": True,
         "pattern": "strided", "length": 128, "stride": 37, "sweeps": 2,
         "span": 2048, "write_frac": 0.25, "seed": 0},
        {"kind": "hashed-collision", "sets": 4, "lines": 4,
         "num_seeds": 16384, "base_seed": 0, "tolerance": 0.15, "seed": 0},
        {"kind": "hashed-collision", "sets": 8, "lines": 8,
         "num_seeds": 16384, "base_seed": 101, "tolerance": 0.20,
         "seed": 0},
        {"kind": "l1l2-machine", "banks": 8, "t_m": 12, "l1_sets": 4,
         "l2_sets": 64, "l2_hit_time": 4, "block": 16, "seed": 0},
        {"kind": "bicameral-isolation", "scalar_sets": 8, "vector_c": 5,
         "hammer": 400, "seed": 0},
    ]
    for _ in range(rounds):
        lo = rng.randrange(1 << 10, 1 << 14)
        cases.append({
            "kind": "bicameral-replay",
            "scalar_sets": rng.choice((4, 16)),
            "vector_c": rng.choice((3, 5)),
            "vector_ways": rng.choice((1, 2)),
            "scalar_ways": rng.choice((1, 2)),
            "vector_mapping": rng.choice(("prime", "direct")),
            "classify": rng.random() < 0.75,
            "write_allocate": rng.random() < 0.75,
            "ranges": [[lo, lo + rng.randrange(32, 512)]],
            "length": rng.choice((64, 192)),
            "write_frac": rng.choice((0.0, 0.25)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "hashed-replay",
            "sets": rng.choice((32, 61, 128)),
            "ways": rng.choice((1, 2)),
            "line_size": rng.choice((1, 4)),
            "hash_seed": rng.randrange(1, 1 << 40),
            "classify": rng.random() < 0.75,
            "write_allocate": rng.random() < 0.75,
            "pattern": rng.choice(("strided", "random", "multistride")),
            "length": rng.choice((64, 256)),
            "stride": rng.randint(1, 200),
            "sweeps": rng.randint(1, 3),
            "span": rng.choice((64, 1024)),
            "write_frac": rng.choice((0.0, 0.25)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "l1l2-replay",
            "l1_sets": rng.choice((4, 8, 16)),
            "l1_ways": rng.choice((1, 2)),
            "l2_sets": rng.choice((64, 128)),
            "write_allocate": rng.random() < 0.75,
            "pattern": rng.choice(("strided", "random", "multistride")),
            "length": rng.choice((256, 512)),
            "stride": rng.randint(1, 64),
            "sweeps": rng.randint(1, 3),
            "span": rng.choice((256, 512)),
            "write_frac": rng.choice((0.0, 0.25)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "collision-exact",
            "sets": rng.choice((5, 16, 64)),
            "lines": rng.randint(2, 96),
            "hash_seed": rng.randrange(1 << 40),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "l1l2-machine",
            "banks": rng.choice((8, 16)),
            "t_m": rng.choice((8, 16)),
            "l1_sets": rng.choice((4, 8)),
            "l2_sets": 128,
            "l2_hit_time": rng.choice((2, 4, 6)),
            "block": rng.choice((16, 48)),
            "seed": rng.randrange(1 << 30),
        })
        cases.append({
            "kind": "bicameral-isolation",
            "scalar_sets": rng.choice((4, 8, 16)),
            "vector_c": rng.choice((3, 5, 7)),
            "hammer": rng.choice((200, 800)),
            "seed": rng.randrange(1 << 30),
        })
    return cases


def _bicameral_case_trace(config: dict) -> tuple[list[int], list[bool] | None]:
    """Boundary probes + in-range sweeps + a scalar tail, all word addrs.

    Every range edge is probed, conflicted against the scalar set it
    would misroute into, and re-probed — the reprobe's hit flips if the
    routing boundary moves by one line.
    """
    rng = random.Random(config["seed"])
    scalar_sets = config["scalar_sets"]
    addresses: list[int] = []
    for lo, hi in config["ranges"]:
        for probe in (lo - 1, lo, lo + 1, hi - 1, hi, hi + 1):
            if probe < 0:
                continue
            conflict = (probe % scalar_sets) + scalar_sets
            addresses.extend((probe, conflict, probe))
    for lo, hi in config["ranges"]:
        span = hi - lo
        stride = rng.randint(1, max(1, span // 8))
        vector = [lo + (i * stride) % span
                  for i in range(config["length"] // 2)]
        addresses.extend(vector * 2)
    addresses.extend(rng.randrange(512) for _ in range(config["length"]))
    write_frac = config["write_frac"]
    if write_frac == 0:
        return addresses, None
    return addresses, [rng.random() < write_frac for _ in addresses]


def _check_zoo(config: dict) -> list[Divergence]:
    from repro.analytical.hashed import (
        exact_colliding_lines,
        expected_colliding_lines,
        mean_colliding_lines,
        second_sweep_misses,
    )
    from repro.cache import BicameralCache, HashedIndexCache, TwoLevelCache

    kind = config["kind"]
    if kind == "bicameral-replay":
        def build() -> BicameralCache:
            cache = BicameralCache(
                scalar_sets=config["scalar_sets"],
                vector_c=config["vector_c"],
                scalar_ways=config["scalar_ways"],
                vector_ways=config["vector_ways"],
                vector_mapping=config["vector_mapping"],
                classify_misses=config["classify"],
                write_allocate=config["write_allocate"])
            for lo, hi in config["ranges"]:
                cache.mark_vector(lo, hi)
            return cache

        addresses, writes = _bicameral_case_trace(config)
        return _diff_batch_vs_scalar(
            build, addresses, writes,
            "BicameralCache batched routing vs scalar set_of "
            "(repro/cache/bicameral.py)")
    if kind == "hashed-replay":
        def build() -> HashedIndexCache:
            return HashedIndexCache(
                num_sets=config["sets"], num_ways=config["ways"],
                line_size_words=config["line_size"],
                seed=config["hash_seed"],
                classify_misses=config["classify"],
                write_allocate=config["write_allocate"])

        addresses, writes = _case_trace(config)
        return _diff_batch_vs_scalar(
            build, addresses, writes,
            "HashedIndexCache batched hash mapping vs scalar set_of "
            "(repro/cache/hashed.py)")
    if kind == "l1l2-replay":
        hierarchy = TwoLevelCache(
            l1_sets=config["l1_sets"], l2_sets=config["l2_sets"],
            l1_ways=config["l1_ways"], classify_misses=False,
            write_allocate=config["write_allocate"])
        solo = SetAssociativeCache(
            num_sets=config["l2_sets"], num_ways=1, classify_misses=False,
            write_allocate=config["write_allocate"])
        addresses, writes = _case_trace(config)
        address_arr = np.asarray(addresses, dtype=np.int64)
        write_arr = None if writes is None else np.asarray(writes,
                                                           dtype=bool)
        hierarchy.access_many(address_arr, write_arr)
        solo.access_many(address_arr, write_arr)
        detail = ("TwoLevelCache invariants (repro/cache/hierarchy.py): "
                  "inclusion, per-level counters, direct-L2 equivalence")
        orphans = hierarchy.l1.resident_lines() - hierarchy.l2.resident_lines()
        if orphans:
            return [("l1l2.inclusion", "L1 subset of L2",
                     f"{len(orphans)} L1 lines absent from L2", detail)]
        per_level = hierarchy.l1_hits + hierarchy.l2_hits
        if per_level != hierarchy.stats.hits:
            return [("l1l2.hit_accounting", hierarchy.stats.hits,
                     per_level, detail)]
        # a direct-mapped L2 behind any L1 serves exactly the hit set of
        # the standalone direct-mapped cache (inclusion + strict back-
        # invalidation make residency identical)
        for field in ("hits", "misses"):
            expected = getattr(solo.stats, field)
            actual = getattr(hierarchy.stats, field)
            if expected != actual:
                return [(f"l1l2.{field}", expected, actual, detail)]
        return []
    if kind == "collision-exact":
        sets, lines = config["sets"], config["lines"]
        seed = config["hash_seed"]
        law = exact_colliding_lines(lines, sets, seed)
        measured = second_sweep_misses(lines, sets, seed)
        if law != measured:
            return [("collision.exact_law", measured, law,
                     "analytical/hashed.exact_colliding_lines vs a real "
                     "HashedIndexCache double sweep")]
        return []
    if kind == "hashed-collision":
        sets, lines = config["sets"], config["lines"]
        expected = float(expected_colliding_lines(lines, sets))
        mean = mean_colliding_lines(lines, sets, config["num_seeds"],
                                    base_seed=config["base_seed"])
        if abs(mean - expected) > config["tolerance"]:
            return [("collision.birthday_mean",
                     f"within {config['tolerance']} of {expected:.4f}",
                     mean,
                     "analytical/hashed.expected_colliding_lines vs the "
                     "seed-averaged measured placement")]
        return []
    if kind == "l1l2-machine":
        l1_sets, l2_sets = config["l1_sets"], config["l2_sets"]
        l2_time, block = config["l2_hit_time"], config["block"]
        assert 2 * l1_sets <= block <= l2_sets

        def run(fast_path: bool):
            machine = CCMachine(
                MachineConfig(num_banks=config["banks"],
                              memory_access_time=config["t_m"],
                              cache_lines=l2_sets),
                TwoLevelCache(l1_sets=l1_sets, l2_sets=l2_sets,
                              l2_hit_time=l2_time, classify_misses=False),
                fast_path=fast_path)
            return machine.execute([
                VectorLoad(base=0, stride=1, length=block),
                VectorLoad(base=0, stride=1, length=block,
                           expect_cached=True),
            ])

        report = run(fast_path=True)
        detail = ("L1/L2 timing law through the CC machine "
                  "(repro/machine/vector_machine.py, "
                  "repro/cache/hierarchy.py)")
        # the second sweep of B >= 2*L1 stride-1 lines misses the direct
        # L1 everywhere and hits the inclusive L2 everywhere: exactly B
        # L2 hits, each a non-pipelined l2_hit_time stall
        if report.l2_hits != block:
            return [("l1l2.report.l2_hits", block, report.l2_hits, detail)]
        if report.miss_stall_cycles != block * l2_time:
            return [("l1l2.report.miss_stall_cycles", block * l2_time,
                     report.miss_stall_cycles, detail)]
        slow = run(fast_path=False)
        for field in _REPORT_FIELDS + ("l2_hits",):
            expected = getattr(slow, field)
            actual = getattr(report, field)
            if expected != actual:
                return [(f"l1l2.parity.{field}", expected, actual,
                         detail + "; fast_path=True vs False")]
        return []
    if kind == "bicameral-isolation":
        rng = random.Random(config["seed"])
        cache = BicameralCache(
            scalar_sets=config["scalar_sets"],
            vector_c=config["vector_c"], classify_misses=False)
        value = cache.vector.num_sets
        base = 1 << 16
        cache.mark_vector(base, base + value)
        vector = np.arange(base, base + value, dtype=np.int64)
        cache.access_many(vector)
        hammer = np.asarray(
            [rng.randrange(1 << 12) for _ in range(config["hammer"])],
            dtype=np.int64)
        cache.access_many(hammer)
        before = cache.stats.misses
        cache.access_many(vector)
        evicted = cache.stats.misses - before
        if evicted:
            return [("bicameral.isolation", 0, evicted,
                     "scalar hammering must never evict vector-half "
                     "lines (repro/cache/bicameral.py)")]
        return []
    raise ValueError(f"unknown cache-zoo case kind {kind!r}")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "cache-batch",
            "batched Cache.access_many vs the scalar access state machine",
            _cache_batch_cases, _check_cache_batch),
        Oracle(
            "machine-timing",
            "vectorised strip-level timing engine vs the scalar machine "
            "reference loop",
            _machine_timing_cases, _check_machine_timing),
        Oracle(
            "analytical-vs-simulated",
            "analytical CC/MM stall formulas vs executable caches and "
            "banks",
            _analytical_cases, _check_analytical),
        Oracle(
            "congruence",
            "congruence closed forms vs brute-force enumeration",
            _congruence_cases, _check_congruence),
        Oracle(
            "prime-geometry",
            "prime-mapping stride footprint vs enumerated line visits",
            _prime_geometry_cases, _check_prime_geometry),
        Oracle(
            "trace-columnar",
            "columnar trace generators and kernels vs the retained scalar "
            "reference paths",
            _trace_columnar_cases, _check_trace_columnar),
        Oracle(
            "kernel-backend",
            "scalar vs numpy vs compiled replay, Belady and machine-timing "
            "engines, bit-for-bit",
            _kernel_backend_cases, _check_kernel_backend),
        Oracle(
            "analytical-batched",
            "vectorised surrogate engine vs the scalar analytical stack, "
            "element-wise over multi-t_m grids",
            _analytical_batched_cases, _check_analytical_batched),
        Oracle(
            "cache-zoo",
            "bicameral routing, hashed indexing, collision laws and L1/L2 "
            "hierarchies vs their scalar references and closed forms",
            _zoo_cases, _check_zoo),
    )
}


def default_oracles() -> list[Oracle]:
    """The full registry, in deterministic order."""
    return [ORACLES[name] for name in sorted(ORACLES)]
