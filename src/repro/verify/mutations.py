"""Mutation self-check: inject known faults and prove the net catches
them.

A differential harness that has never seen a failure proves nothing —
the oracles could all be vacuous.  This module keeps a catalogue of
representative faults (the bugs this codebase has actually had, or
almost had: an off-by-one in the Mersenne index fold, a dropped
bank-busy stall in the batched memory path, a wrong modulus in the
prime-cache stall formula, a congruence solver that loses the
multi-solution family, a phase-collapsed stride footprint, a columnar
trace recorder that drops the last reference of every block, a compiled
replay kernel that drops write-allocation, a Belady kernel that
mistakes the never-reused sentinel for an immediate reuse, a batched
analytical kernel that collapses the ``t_m`` broadcast axis onto its
first value, a hashed-index batch mapping that drops the seed fold, a
bicameral routing mask with the wrong half-open-interval side, a
birthday-paradox expectation with an off-by-one exponent) and, for
each, temporarily monkey-patches the fault in, re-runs the oracle
sweep, and records which oracles noticed.  A mutation nobody catches is
a *hole* in the verification net and fails the run.

Faults are injected by swapping attributes on the real classes/modules
(and restored in a ``finally``), so both the mutated code and the
oracles exercise exactly the import paths production uses.
"""

from __future__ import annotations

import math
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.verify.result import MutationOutcome

__all__ = ["MUTATIONS", "Mutation", "mutation_active", "run_selfcheck"]

#: Names of the faults currently injected (a stack: ``Mutation.active``
#: contexts nest).  ``repro.orchestrate.compute_figures`` consults this
#: to bypass the result cache while any fault is live, so mutated runs
#: can neither read stale un-mutated results nor poison the store.
_ACTIVE: list[str] = []


def mutation_active() -> bool:
    """True while a catalogued fault is injected via :meth:`Mutation.active`."""
    return bool(_ACTIVE)


@contextmanager
def _patched(obj, attr: str, replacement):
    original = getattr(obj, attr)
    setattr(obj, attr, replacement)
    try:
        yield
    finally:
        setattr(obj, attr, original)


@dataclass(frozen=True)
class Mutation:
    """One catalogued fault.

    Attributes:
        name: catalogue key.
        description: what the fault breaks, in implementation terms.
        expected_oracles: the oracles designed to catch it (the
            self-check only *requires* one catcher, but tests pin these).
        apply: context manager injecting the fault while active.
    """

    name: str
    description: str
    expected_oracles: tuple[str, ...]
    apply: Callable

    @contextmanager
    def active(self):
        """Inject the fault and mark it live for cache-bypass checks."""
        _ACTIVE.append(self.name)
        try:
            with self.apply():
                yield
        finally:
            _ACTIVE.pop()


@contextmanager
def _fold_modulus_off_by_one():
    from repro.cache.prime import PrimeMappedCache

    def bad_map_sets_batch(self, lines):
        # the classic fold bug: modulus constant off by one, so the
        # batched index fold disagrees with the scalar set_of
        return lines % (self.modulus.value - 1)

    with _patched(PrimeMappedCache, "_map_sets_batch", bad_map_sets_batch):
        yield


@contextmanager
def _dropped_bank_busy_stall():
    from repro.memory import banks

    original = banks.InterleavedMemory.service_many

    def bad_service_many(self, addresses, start_cycle, *, stride=None):
        reply = original(self, addresses, start_cycle, stride=stride)
        # the batched path "forgets" that busy banks stall the stream
        return banks.BatchReply(
            accesses=reply.accesses, stall_cycles=0,
            final_cycle=reply.final_cycle - reply.stall_cycles)

    with _patched(banks.InterleavedMemory, "service_many",
                  bad_service_many):
        yield


@contextmanager
def _wrong_mersenne_modulus():
    from repro.analytical.cc import PrimeMappedModel

    def bad_self_stalls(self, block, stride):
        # folding by 2^c instead of the Mersenne prime 2^c - 1 destroys
        # the conflict-freedom law the whole design rests on
        wrong = self.config.cache_lines + 1
        if stride != 0 and stride % wrong != 0:
            footprint = wrong // math.gcd(wrong, abs(stride))
            misses = max(0.0, block - footprint)
        else:
            misses = max(0.0, block - 1)
        return misses * self.config.t_m

    with _patched(PrimeMappedModel, "self_stalls_for_stride",
                  bad_self_stalls):
        yield


@contextmanager
def _congruence_lost_solutions():
    from repro.analytical import congruence

    original = congruence.solve_linear_congruence

    def bad_solve(a, b, m):
        # keeps only the principal solution, dropping the other
        # gcd(a, m) - 1 members of the solution family
        return original(a, b, m)[:1]

    with _patched(congruence, "solve_linear_congruence", bad_solve):
        yield


@contextmanager
def _columnar_block_off_by_one():
    import numpy as np

    from repro.trace.records import Trace

    original = Trace.append_block

    def bad_append_block(self, addresses, *, write=False):
        # the classic block-boundary bug: the columnar recorder drops the
        # last reference of every appended block
        block = np.asarray(addresses, dtype=np.int64).reshape(-1)[:-1]
        if not isinstance(write, (bool, np.bool_)):
            write = np.asarray(write, dtype=bool).reshape(-1)[:-1]
        original(self, block, write=write)

    with _patched(Trace, "append_block", bad_append_block):
        yield


@contextmanager
def _kernel_write_allocate_dropped():
    from repro import kernels

    original = kernels.replay_oneway

    def bad_replay_oneway(lines, writes, set_mode, set_param,
                          write_allocate, current, dirty, hits_out):
        # the compiled one-way replay kernel "forgets" the write-allocate
        # policy and treats every store miss as no-allocate
        return original(lines, writes, set_mode, set_param, False,
                        current, dirty, hits_out)

    with _patched(kernels, "replay_oneway", bad_replay_oneway):
        yield


@contextmanager
def _kernel_belady_sentinel_pinned():
    import numpy as np

    from repro import kernels

    original = kernels.belady_opt

    def bad_belady_opt(lines, sets, next_use, num_ways, tags, nu, ins):
        # the classic sentinel confusion: never-reused references (whose
        # next use is the sentinel n) are treated as needed immediately,
        # so OPT pins dead lines and evicts live ones
        clipped = np.where(next_use == lines.size, 0, next_use)
        return original(lines, sets, clipped, num_ways, tags, nu, ins)

    with _patched(kernels, "belady_opt", bad_belady_opt):
        yield


@contextmanager
def _phase_collapsed_footprint():
    from repro.cache.prime import PrimeMappedCache

    def bad_lines_touched(self, stride):
        # ignores the line-offset phases of fractional-line strides and
        # reports the single-phase count
        if stride == 0:
            return 1
        word_stride = abs(stride)
        g = math.gcd(word_stride, self.line_size_words)
        line_stride = word_stride // g
        value = self.modulus.value
        return value // math.gcd(value, line_stride)

    with _patched(PrimeMappedCache, "lines_touched_by_stride",
                  bad_lines_touched):
        yield


@contextmanager
def _batched_broadcast_collapse():
    import numpy as np

    from repro.analytical import batched

    original = batched.mm_random_self_stalls_batch

    def bad_random_stalls(num_banks, t_m, mvl):
        # the classic broadcast bug: a stray scalarisation scores every
        # grid point with the first t_m's stall count instead of its own
        collapsed = np.asarray(t_m).flat[0]
        shape = np.broadcast_shapes(np.shape(num_banks), np.shape(t_m),
                                    np.shape(mvl))
        return np.broadcast_to(
            original(num_banks, collapsed, mvl), shape).copy()

    with _patched(batched, "mm_random_self_stalls_batch",
                  bad_random_stalls):
        yield


@contextmanager
def _hashed_seed_fold_dropped():
    from repro.cache import hashed
    from repro.cache.hashed import HashedIndexCache

    def bad_map_sets_batch(self, lines):
        # the batched hash mapping "forgets" to fold the seed in, so a
        # seeded cache's batch replay disagrees with its scalar set_of
        return hashed.hash_sets(lines, 0, self.num_sets)

    with _patched(HashedIndexCache, "_map_sets_batch", bad_map_sets_batch):
        yield


@contextmanager
def _bicameral_boundary_misrouted():
    import numpy as np

    from repro.cache.bicameral import BicameralCache

    def bad_line_vector_mask(self, lines):
        # the classic half-open-interval bug: the batched routing mask
        # uses the wrong searchsorted side, shifting both edges of every
        # vector range by one line relative to the scalar set_of
        slots = np.searchsorted(self._vector_bounds, lines, side="left")
        return (slots & 1).astype(bool)

    with _patched(BicameralCache, "_line_vector_mask",
                  bad_line_vector_mask):
        yield


@contextmanager
def _collision_exponent_off_by_one():
    import numpy as np

    from repro.analytical import hashed

    def bad_expected_colliding(num_lines, num_sets):
        # singleton probability raised to B instead of B - 1: each line
        # "collides with itself", inflating the expectation
        b = np.asarray(num_lines, dtype=np.float64)
        s = np.asarray(num_sets, dtype=np.float64)
        return b * -np.expm1(b * np.log1p(-1.0 / s))

    with _patched(hashed, "expected_colliding_lines",
                  bad_expected_colliding):
        yield


MUTATIONS: dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            "fold-modulus-off-by-one",
            "batched Mersenne index fold uses modulus 2^c - 2 while the "
            "scalar set_of folds by 2^c - 1",
            ("cache-batch",),
            _fold_modulus_off_by_one),
        Mutation(
            "dropped-bank-busy-stall",
            "InterleavedMemory.service_many reports zero stall cycles "
            "for busy-bank collisions",
            ("machine-timing", "analytical-vs-simulated"),
            _dropped_bank_busy_stall),
        Mutation(
            "wrong-mersenne-modulus",
            "PrimeMappedModel.self_stalls_for_stride folds strides by "
            "2^c instead of the Mersenne prime 2^c - 1",
            ("analytical-vs-simulated",),
            _wrong_mersenne_modulus),
        Mutation(
            "congruence-lost-solutions",
            "solve_linear_congruence returns only the principal solution "
            "of a*x === b (mod m)",
            ("congruence",),
            _congruence_lost_solutions),
        Mutation(
            "phase-collapsed-footprint",
            "lines_touched_by_stride ignores the line-offset phases of "
            "fractional-line strides",
            ("prime-geometry",),
            _phase_collapsed_footprint),
        Mutation(
            "kernel-write-allocate-dropped",
            "the compiled one-way replay kernel treats every store miss "
            "as no-allocate regardless of the cache's policy",
            ("kernel-backend",),
            _kernel_write_allocate_dropped),
        Mutation(
            "kernel-belady-sentinel-pinned",
            "the compiled Belady OPT kernel treats the never-reused "
            "sentinel as an immediate next use, pinning dead lines",
            ("kernel-backend",),
            _kernel_belady_sentinel_pinned),
        Mutation(
            "columnar-block-off-by-one",
            "Trace.append_block drops the last reference of every "
            "recorded address block",
            ("trace-columnar",),
            _columnar_block_off_by_one),
        Mutation(
            "batched-broadcast-collapse",
            "mm_random_self_stalls_batch collapses the t_m broadcast "
            "axis, scoring every grid point with the first t_m's stalls",
            ("analytical-batched",),
            _batched_broadcast_collapse),
        Mutation(
            "hashed-seed-fold-dropped",
            "HashedIndexCache._map_sets_batch ignores the hash seed, so "
            "seeded batch replays disagree with the scalar set_of",
            ("cache-zoo",),
            _hashed_seed_fold_dropped),
        Mutation(
            "bicameral-boundary-misrouted",
            "the bicameral batched routing mask uses searchsorted "
            "side='left', shifting both edges of every vector range",
            ("cache-zoo",),
            _bicameral_boundary_misrouted),
        Mutation(
            "collision-exponent-off-by-one",
            "expected_colliding_lines raises the singleton probability "
            "to B instead of B - 1, counting self-collisions",
            ("cache-zoo",),
            _collision_exponent_off_by_one),
    )
}


def run_selfcheck(*, seed: int = 0, mode: str = "quick",
                  mutations: list[str] | None = None) -> list[MutationOutcome]:
    """Inject each catalogued fault and record which oracles catch it.

    Runs the full oracle sweep (same seed and depth as the main run)
    under each fault in turn, so the self-check certifies the *actual*
    net, not a special-cased one.
    """
    from repro.verify.runner import DifferentialRunner

    runner = DifferentialRunner(seed=seed)
    outcomes = []
    for name in mutations or sorted(MUTATIONS):
        mutation = MUTATIONS[name]
        with ExitStack() as stack:
            stack.enter_context(mutation.active())
            swept = runner.run(mode)
        outcomes.append(MutationOutcome(
            mutation=mutation.name,
            description=mutation.description,
            expected_oracles=mutation.expected_oracles,
            caught_by=[o.oracle for o in swept if o.mismatches]))
    return outcomes
